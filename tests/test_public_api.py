"""Public-API stability tests.

Guards the documented import surface: everything README and the examples
rely on must be importable from the advertised locations, and ``__all__``
lists must be accurate (no phantom exports).
"""

import importlib

import pytest

import repro


class TestTopLevelSurface:
    def test_version(self):
        assert repro.__version__ == "1.8.0"

    def test_all_entries_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"

    @pytest.mark.parametrize(
        "name",
        ["Bitstream", "BitstreamBatch", "Encoding", "scc", "Synchronizer",
         "Desynchronizer", "Decorrelator", "ShuffleBuffer", "SyncMax",
         "SyncMin", "DesyncSaturatingAdder", "Multiplier", "ScaledAdder",
         "CorDiv", "CAMax", "DigitalToStochastic", "Regenerator", "LFSR",
         "VanDerCorput", "Halton", "Sobol", "make_rng", "SCGraph", "autofix",
         "flip_bits", "fault_sweep", "ReproError"],
    )
    def test_readme_names_present(self, name):
        assert hasattr(repro, name)


class TestSubpackageSurfaces:
    @pytest.mark.parametrize(
        "module",
        ["repro.bitstream", "repro.rng", "repro.convert", "repro.arith",
         "repro.core", "repro.hardware", "repro.pipeline", "repro.analysis",
         "repro.rtl", "repro.graph", "repro.apps", "repro.faults",
         "repro.cli", "repro.kernels", "repro.obs"],
    )
    def test_subpackage_all_accurate(self, module):
        mod = importlib.import_module(module)
        assert hasattr(mod, "__all__") or module in ("repro.faults", "repro.cli")
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.__all__ lists missing {name!r}"

    def test_docstrings_everywhere(self):
        # Every public module documents itself (release hygiene).
        for module in ("repro", "repro.bitstream", "repro.rng", "repro.convert",
                       "repro.arith", "repro.core", "repro.hardware",
                       "repro.pipeline", "repro.analysis", "repro.rtl",
                       "repro.graph", "repro.apps", "repro.faults", "repro.cli",
                       "repro.kernels", "repro.obs"):
            mod = importlib.import_module(module)
            assert mod.__doc__ and len(mod.__doc__.strip()) > 20, module

    def test_core_classes_documented(self):
        from repro.core import Decorrelator, Desynchronizer, Synchronizer
        for cls in (Synchronizer, Desynchronizer, Decorrelator):
            assert cls.__doc__ and len(cls.__doc__) > 50
            assert cls.process_pair.__doc__
