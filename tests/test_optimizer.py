"""The plan optimizer: structural CSE, DCE, arena allocation, fallbacks.

Covers the optimizer's bit-safety contract (optimized plans are bit-/
float-identical to the faithful schedule through every backend), the
value-numbering rules (commutative canonicalization, RNG identity,
transform regrouping), per-call dead-node elimination and its memo, the
override-divergence fallback to the raw twin, per-level plan-cache
stats, arena buffer recycling, and ``describe()``'s ellipsis rendering.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SCGraph, engine, obs
from repro.core import Synchronizer
from repro.engine import optimize as opt
from repro.engine.executor import run_batch
from repro.engine.library import (
    GRAPH_LIBRARY,
    build_graph,
    cse_sweep_graph,
    mux_chain_graph,
)
from repro.engine.optimize import (
    BufferArena,
    OptimizedPlan,
    clear_dce_cache,
    dce_cache_info,
    dce_plan,
    default_optimize,
    optimize_plan,
    set_default_optimize,
)
from repro.engine.plan import _ellipsize, compile_graph
from repro.graph.nodes import TransformNode
from repro.runner.spec import EXECUTION_PARAMS, content_params
from tests.helpers import assert_backends_equivalent


@pytest.fixture(autouse=True)
def _fresh_caches():
    engine.clear_cache()
    yield
    engine.clear_cache()


def _dup_source_graph():
    """Two identical sources, two structurally identical multiplies."""
    g = SCGraph()
    g.source("a", 0.7, "vdc")
    g.source("a2", 0.7, "vdc")
    g.source("b", 0.3, "halton3")
    g.op("m1", "mul", "a", "b")
    g.op("m2", "mul", "a2", "b")
    g.op("out", "sat_add", "m1", "m2")
    return g


# ---------------------------------------------------------------------- #
# 1. Value numbering (CSE) units
# ---------------------------------------------------------------------- #

class TestValueNumbering:
    def test_identical_sources_and_ops_merge(self):
        plan = compile_graph(_dup_source_graph(), optimize=True)
        assert isinstance(plan, OptimizedPlan)
        assert plan.resolve("a2") == "a"
        assert plan.resolve("m2") == "m1"
        assert plan.report.sources_merged == 1
        assert plan.report.ops_merged == 1
        # out survives: sat_add(m1, m1) has no prior twin.
        assert plan.resolve("out") == "out"
        assert len(plan.steps) == len(plan.raw.steps) - 2

    def test_rng_seed_distinguishes_sources(self):
        g = SCGraph()
        g.source("a", 0.5, "lfsr", seed=7)
        g.source("b", 0.5, "lfsr", seed=9)
        g.op("m", "mul", "a", "b")
        plan = compile_graph(g, optimize=True)
        assert plan.report.merged == 0
        assert plan.resolve("b") == "b"

    def test_rng_width_distinguishes_sources(self):
        g = SCGraph()
        g.source("a", 0.5, "vdc", width=8)
        g.source("b", 0.5, "vdc", width=10)
        g.op("m", "mul", "a", "b")
        plan = compile_graph(g, optimize=True)
        assert plan.report.merged == 0

    def test_value_distinguishes_sources(self):
        g = SCGraph()
        g.source("a", 0.5, "vdc")
        g.source("b", 0.25, "vdc")
        g.op("m", "mul", "a", "b")
        assert compile_graph(g, optimize=True).report.merged == 0

    def test_commutative_ops_merge_across_operand_order(self):
        g = SCGraph()
        g.source("a", 0.7, "vdc")
        g.source("b", 0.3, "halton3")
        g.op("m1", "mul", "a", "b")
        g.op("m2", "mul", "b", "a")  # AND is symmetric
        g.op("out", "max", "m1", "m2")
        plan = compile_graph(g, optimize=True)
        assert plan.resolve("m2") == "m1"
        assert_backends_equivalent(g, 200, optimize="both")

    def test_mux_is_direction_sensitive(self):
        g = SCGraph()
        g.source("a", 0.7, "vdc")
        g.source("b", 0.3, "halton3")
        g.op("s1", "scaled_add", "a", "b")
        g.op("s2", "scaled_add", "b", "a")  # MUX selects between operands
        g.op("out", "max", "s1", "s2")
        plan = compile_graph(g, optimize=True)
        assert plan.report.ops_merged == 0
        assert plan.resolve("s2") == "s2"

    def test_ops_merge_through_aliased_operands(self):
        # m2 reads the *duplicate* source; value numbering rewrites its
        # operands before keying, so it still merges with m1.
        plan = compile_graph(_dup_source_graph(), optimize=True)
        m_step = plan.step("m1")
        assert m_step.inputs == ("a", "b")

    def test_duplicate_transform_splices_merge(self):
        sync = Synchronizer(depth=1)
        g = SCGraph()
        g.source("a", 0.7, "vdc")
        g.source("b", 0.4, "halton3")
        for stem in ("p", "q"):
            shared: dict = {}
            g.add(TransformNode(f"{stem}_x", sync, ("a", "b"), 0, shared))
            g.add(TransformNode(f"{stem}_y", sync, ("a", "b"), 1, shared))
        g.op("d1", "sub", "p_x", "p_y")
        g.op("d2", "sub", "q_x", "q_y")
        g.op("out", "max", "d1", "d2")
        plan = compile_graph(g, optimize=True)
        assert plan.report.transforms_merged == 2
        assert plan.resolve("q_x") == "p_x"
        assert plan.resolve("q_y") == "p_y"
        assert plan.resolve("d2") == "d1"
        assert_backends_equivalent(g, 333, optimize="both")

    def test_cse_sweep_collapses_to_one_interior(self):
        copies = 8
        plan = compile_graph(cse_sweep_graph(copies), optimize=True)
        ops = [s for s in plan.steps if s.kind == "op"]
        sources = [s for s in plan.steps if s.kind == "source"]
        assert len(ops) == 4 + copies        # one shared tree + one min per copy
        assert len(sources) == 4 + copies    # one quadruple + per-copy weights
        assert plan.report.ops_merged == (copies - 1) * 4
        assert plan.report.sources_merged == (copies - 1) * 4
        # The merged quadruple forms four override-sensitive classes.
        assert len(plan.source_merges) == 4
        for _, dups in plan.source_merges:
            assert len(dups) == copies - 1

    def test_report_counts_consistent(self):
        plan = compile_graph(cse_sweep_graph(4), optimize=True)
        r = plan.report
        assert r.merged == r.sources_merged + r.ops_merged + r.transforms_merged
        assert len(r.merges) == r.merged
        assert len(plan.raw.steps) - len(plan.steps) == r.merged

    def test_optimize_plan_on_clean_graph_is_identity_rewrite(self):
        raw = compile_graph(build_graph("mixed_pipeline"), optimize=False)
        plan = optimize_plan(raw)
        assert plan.report.merged == 0
        assert [s.name for s in plan.steps] == [s.name for s in raw.steps]


# ---------------------------------------------------------------------- #
# 2. Dead-node elimination
# ---------------------------------------------------------------------- #

class TestDeadNodeElimination:
    def test_cone_restriction(self):
        plan = compile_graph(build_graph("mixed_pipeline"), optimize=True)
        pruned = dce_plan(plan, frozenset({"diff"}))
        assert {s.name for s in pruned.steps} == {"a", "b", "diff"}

    def test_full_keep_is_identity(self):
        plan = compile_graph(build_graph("mixed_pipeline"), optimize=True)
        names = frozenset(s.name for s in plan.steps)
        assert dce_plan(plan, names) is plan

    def test_lifetimes_recomputed(self):
        plan = compile_graph(build_graph("mixed_pipeline"), optimize=True)
        pruned = dce_plan(plan, frozenset({"diff"}))
        freed = [n for s in pruned.steps for n in s.free_after]
        assert set(freed) <= {s.name for s in pruned.steps}

    def test_keep_subset_results_identical_to_full_run(self):
        g = build_graph("depth8")
        plan = compile_graph(g, optimize=True)
        full = run_batch(plan, 256)
        subset = run_batch(plan, 256, keep=["n8"])
        assert np.array_equal(subset.words("n8"), full.words("n8"))
        with pytest.raises(KeyError):
            subset.words("n3")  # pruned and not kept

    def test_memo_hits_and_clear(self):
        clear_dce_cache()
        plan = compile_graph(build_graph("depth8"), optimize=True)
        run_batch(plan, 64, keep=["n8"])
        run_batch(plan, 64, keep=["n8"])
        info = dce_cache_info()
        assert info["misses"] == 1 and info["hits"] >= 1
        clear_dce_cache()
        info = dce_cache_info()
        assert info == {"hits": 0, "misses": 0, "size": 0,
                        "maxsize": info["maxsize"]}

    def test_clear_cache_drops_dce_memo_too(self):
        plan = compile_graph(build_graph("depth8"), optimize=True)
        run_batch(plan, 64, keep=["n8"])
        engine.clear_cache()
        assert dce_cache_info()["size"] == 0

    def test_audit_never_prunes(self):
        # An audit measures every operator, keep or no keep.
        plan = compile_graph(build_graph("depth8"), optimize=True)
        audited = plan.audit(256)
        assert {e.node for e in audited.entries} == {
            s.name for s in plan.semantic_steps if s.kind != "source"
        }

    def test_fork_hook_rebinds_lock_and_drops_memo(self):
        # PR 5 lock-hook pattern, simulated by invoking the hook.
        plan = compile_graph(build_graph("depth8"), optimize=True)
        run_batch(plan, 64, keep=["n8"])
        assert dce_cache_info()["size"] == 1
        old_lock = opt._DCE_LOCK
        opt._reinit_after_fork()
        assert opt._DCE_LOCK is not old_lock
        assert len(opt._DCE_CACHE) == 0
        assert opt._DCE_LOCK.acquire(blocking=False)
        opt._DCE_LOCK.release()


# ---------------------------------------------------------------------- #
# 3. Override-divergence fallback
# ---------------------------------------------------------------------- #

class TestOverrideFallback:
    def test_split_merge_falls_back_to_raw(self):
        g = _dup_source_graph()
        plan = compile_graph(g, optimize=True)
        raw = compile_graph(g, optimize=False)
        # Overriding only one member of the (a, a2) merge class makes
        # the merged schedule wrong; the call must execute the raw twin.
        with obs.observe() as trace:
            got = run_batch(plan, 256, values={"a2": 0.1})
        want = run_batch(raw, 256, values={"a2": 0.1})
        for name in ("a", "a2", "m1", "m2", "out"):
            assert np.array_equal(got.words(name), want.words(name)), name
        counters = obs.stats_doc(trace)["metrics"]["counters"]
        assert counters.get("engine.optimize.fallback", 0) >= 1

    def test_consistent_override_keeps_optimized_schedule(self):
        g = _dup_source_graph()
        plan = compile_graph(g, optimize=True)
        raw = compile_graph(g, optimize=False)
        sweep = np.linspace(0.1, 0.9, 32)
        with obs.observe() as trace:
            got = run_batch(plan, 256, values={"a": sweep, "a2": sweep})
        want = run_batch(raw, 256, values={"a": sweep, "a2": sweep})
        for name in ("m1", "m2", "out"):
            assert np.array_equal(got.words(name), want.words(name)), name
        counters = obs.stats_doc(trace)["metrics"]["counters"]
        assert counters.get("engine.optimize.fallback", 0) == 0

    def test_merged_away_name_still_retrievable(self):
        plan = compile_graph(_dup_source_graph(), optimize=True)
        result = run_batch(plan, 256, keep=["a2", "m2"])
        raw = run_batch(plan.raw, 256, keep=["a2", "m2"])
        assert np.array_equal(result.words("a2"), raw.words("a2"))
        assert np.array_equal(result.words("m2"), raw.words("m2"))


# ---------------------------------------------------------------------- #
# 4. Arena allocation
# ---------------------------------------------------------------------- #

class TestBufferArena:
    def test_take_release_recycles_exact_buffer(self):
        arena = BufferArena()
        buf = arena.take(4, 8)
        assert buf.shape == (4, 8) and buf.dtype == np.dtype("<u8")
        arena.release(buf)
        again = arena.take(4, 8)
        assert again is buf
        assert arena.hits == 1 and arena.misses == 1

    def test_shape_and_dtype_key_buckets(self):
        arena = BufferArena()
        words = arena.take(4, 8)
        arena.release(words)
        bits = arena.take_shape((4, 8), np.uint8)
        assert bits is not words and bits.dtype == np.uint8
        arena.release(bits)
        assert arena.take_shape((4, 8), np.uint8) is bits
        assert arena.take(4, 8) is words

    def test_flush_counters_resets(self):
        arena = BufferArena()
        arena.release(arena.take(2, 2))
        arena.take(2, 2)
        arena.flush_counters()
        assert arena.hits == 0 and arena.misses == 0

    def test_arena_reuse_counter_emitted(self):
        plan = compile_graph(mux_chain_graph(32), optimize=True)
        with obs.observe() as trace:
            run_batch(plan, 512, keep=["n32"])
        counters = obs.stats_doc(trace)["metrics"]["counters"]
        assert counters.get("engine.arena.reuse", 0) > 0

    def test_arena_batch_identical_to_raw_path(self):
        g = mux_chain_graph(48)
        plan = compile_graph(g, optimize=True)
        raw = compile_graph(g, optimize=False)
        sweep = {"src0": np.linspace(0.05, 0.95, 64)}
        a = run_batch(plan, 320, values=sweep)
        b = run_batch(raw, 320, values=sweep)
        for name in [s.name for s in raw.steps]:
            assert np.array_equal(a.words(name), b.words(name)), name


# ---------------------------------------------------------------------- #
# 5. Plan cache levels / defaults
# ---------------------------------------------------------------------- #

class TestCacheLevels:
    def test_levels_cache_independently(self):
        g = build_graph("mixed_pipeline")
        compile_graph(g, optimize=True)
        compile_graph(g, optimize=True)
        info = engine.cache_info()
        assert info["levels"]["optimized"] == {"hits": 1, "misses": 1, "size": 1}
        # The optimized compile seeded the raw twin silently: level 0
        # shows a hit on first explicit request, no miss.
        compile_graph(g, optimize=False)
        info = engine.cache_info()
        assert info["levels"]["raw"]["hits"] == 1
        assert info["levels"]["raw"]["misses"] == 0
        assert info["levels"]["raw"]["size"] == 1

    def test_clear_cache_resets_levels(self):
        compile_graph(build_graph("mixed_pipeline"), optimize=True)
        engine.clear_cache()
        info = engine.cache_info()
        assert info["hits"] == 0 and info["misses"] == 0 and info["size"] == 0

    def test_default_optimize_switch(self):
        assert default_optimize() is True
        previous = set_default_optimize(False)
        try:
            assert previous is True
            plan = compile_graph(build_graph("mixed_pipeline"))
            assert not isinstance(plan, OptimizedPlan)
        finally:
            set_default_optimize(previous)
        assert isinstance(
            compile_graph(build_graph("mixed_pipeline")), OptimizedPlan
        )

    def test_content_params_strip_execution_keys(self):
        # Runner content addresses must not see the optimization level.
        assert "optimize" in EXECUTION_PARAMS
        stripped = content_params({"n": 256, "optimize": False, "jobs": 4})
        assert stripped == {"n": 256}


# ---------------------------------------------------------------------- #
# 6. describe() rendering
# ---------------------------------------------------------------------- #

class TestDescribe:
    def test_ellipsize_midpoint(self):
        assert _ellipsize("short") == "short"
        long = "+".join(f"n{i}" for i in range(64))
        out = _ellipsize(long)
        assert len(out) == 64 and "…" in out
        assert out.startswith(long[:10]) and out.endswith(long[-10:])

    def test_deep_chain_label_truncated_in_describe(self):
        plan = compile_graph(mux_chain_graph(64), optimize=False)
        text = plan.describe()
        chain_lines = [ln for ln in text.splitlines() if "ops ->" in ln]
        assert chain_lines, "expected a fused-chain line"
        for line in chain_lines:
            label = line.strip().split(" (")[0]
            assert len(label) <= 64
            assert "…" in label  # depth 64 must truncate

    def test_optimized_section_renders(self):
        plan = compile_graph(cse_sweep_graph(16), optimize=True)
        text = plan.describe()
        assert "optimized: 120 merged (60 sources, 60 ops, 0 transforms)" in text
        assert f"{len(plan.raw.steps)} -> {len(plan.steps)} steps" in text
        assert "… 112 more" in text  # merge list capped at 8 lines

    def test_raw_plan_renders_zero_line_when_optimized_type(self):
        plan = compile_graph(build_graph("mixed_pipeline"), optimize=True)
        assert "optimized: 0 merged" in plan.describe()


# ---------------------------------------------------------------------- #
# 7. The equivalence matrix, optimize on/off (property-based)
# ---------------------------------------------------------------------- #

class TestOptimizeEquivalence:
    @pytest.mark.parametrize("graph_name", sorted(GRAPH_LIBRARY))
    def test_library_matrix_both_levels(self, graph_name):
        assert_backends_equivalent(
            build_graph(graph_name), 200, tile_words=(3,), audit=True,
            optimize="both",
        )

    @settings(max_examples=8, deadline=None)
    @given(
        copies=st.integers(min_value=1, max_value=6),
        length=st.integers(min_value=65, max_value=320),
    )
    def test_cse_sweep_property(self, copies, length):
        assert_backends_equivalent(
            cse_sweep_graph(copies), length, tile_words=(2,), optimize="both"
        )

    @settings(max_examples=8, deadline=None)
    @given(
        depth=st.integers(min_value=1, max_value=12),
        sources=st.integers(min_value=1, max_value=3),
        length=st.integers(min_value=64, max_value=256),
    )
    def test_mux_chain_property(self, depth, sources, length):
        assert_backends_equivalent(
            mux_chain_graph(depth, sources), length, tile_words=(2,),
            optimize="both",
        )

    @settings(max_examples=6, deadline=None)
    @given(
        value=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=1, max_value=200),
    )
    def test_duplicate_lfsr_sources_property(self, value, seed):
        g = SCGraph()
        g.source("a", value, "lfsr", seed=seed)
        g.source("a2", value, "lfsr", seed=seed)
        g.source("b", 0.4, "halton3")
        g.op("m1", "mul", "a", "b")
        g.op("m2", "mul", "a2", "b")
        g.op("out", "sat_add", "m1", "m2")
        assert_backends_equivalent(g, 128, tile_words=(2,), optimize="both")
