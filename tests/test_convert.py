"""Unit tests for the converters (repro.convert)."""

import numpy as np
import pytest

from repro.bitstream import Bitstream, BitstreamBatch, scc, scc_batch
from repro.convert import (
    AccumulativeParallelCounter,
    DigitalToStochastic,
    Regenerator,
    StochasticToDigital,
)
from repro.exceptions import CircuitConfigurationError, EncodingError
from repro.rng import CounterRNG, Halton, LFSR, VanDerCorput


class TestD2S:
    def test_exact_with_full_period_rng(self):
        d2s = DigitalToStochastic(VanDerCorput(width=8))
        for level in (0, 1, 37, 128, 255, 256):
            assert d2s.convert(level).ones == level

    def test_counter_rng_gives_burst(self):
        d2s = DigitalToStochastic(CounterRNG(width=3), length=8)
        assert d2s.convert(3).to01() == "11100000"

    def test_default_length_is_rng_period(self):
        assert DigitalToStochastic(VanDerCorput(width=8)).length == 256

    def test_out_of_range_rejected(self):
        d2s = DigitalToStochastic(VanDerCorput(width=4))
        with pytest.raises(EncodingError):
            d2s.convert(17)
        with pytest.raises(EncodingError):
            d2s.convert(-1)

    def test_convert_value_quantises(self):
        d2s = DigitalToStochastic(VanDerCorput(width=8))
        assert d2s.convert_value(0.5).value == 0.5

    def test_convert_value_bipolar(self):
        d2s = DigitalToStochastic(VanDerCorput(width=8))
        s = d2s.convert_value(-0.5, encoding="bipolar")
        assert s.value == -0.5

    def test_convert_value_range_check(self):
        d2s = DigitalToStochastic(VanDerCorput(width=8))
        with pytest.raises(EncodingError):
            d2s.convert_value(1.01)

    def test_batch_shares_sequence_hence_correlated(self):
        d2s = DigitalToStochastic(VanDerCorput(width=8))
        batch = d2s.convert_batch(np.arange(1, 256, 16))
        first = batch.bits[0:1]
        sccs = scc_batch(np.broadcast_to(first, batch.bits.shape), batch.bits)
        assert (sccs == 1.0).all()

    def test_batch_values_exact(self):
        d2s = DigitalToStochastic(VanDerCorput(width=8))
        levels = np.array([0, 5, 100, 256])
        batch = d2s.convert_batch(levels)
        assert np.array_equal(batch.ones, levels)

    def test_batch_rejects_2d(self):
        d2s = DigitalToStochastic(VanDerCorput(width=4))
        with pytest.raises(EncodingError):
            d2s.convert_batch(np.zeros((2, 2), dtype=np.int64))

    def test_values_batch(self):
        d2s = DigitalToStochastic(VanDerCorput(width=8))
        batch = d2s.convert_values_batch([0.0, 0.25, 1.0])
        assert np.allclose(batch.values, [0.0, 0.25, 1.0])


class TestS2D:
    def test_counts_ones(self):
        assert StochasticToDigital().convert(Bitstream("0110100")) == 3

    def test_accepts_raw_bits(self):
        assert StochasticToDigital().convert(np.array([1, 1, 0], dtype=np.uint8)) == 2

    def test_batch(self):
        batch = BitstreamBatch([[1, 1, 0, 0], [1, 1, 1, 1]])
        assert StochasticToDigital().convert_batch(batch).tolist() == [2, 4]

    def test_to_value(self):
        assert StochasticToDigital().to_value(Bitstream("0110")) == 0.5

    def test_roundtrip_with_d2s(self):
        d2s = DigitalToStochastic(Halton(base=3, width=8))
        s2d = StochasticToDigital()
        for level in (0, 17, 200, 255):
            # Halton is not exactly uniform per prefix; allow 1 LSB.
            assert abs(s2d.convert(d2s.convert(level)) - level) <= 2


class TestAPC:
    def test_exact_sum(self):
        batch = BitstreamBatch([[1, 0, 1, 0], [1, 1, 1, 0], [0, 0, 0, 1]])
        assert AccumulativeParallelCounter().accumulate(batch) == 6

    def test_accumulate_value_is_unscaled_sum(self):
        batch = BitstreamBatch([[1, 1, 0, 0], [1, 1, 1, 1]])
        assert AccumulativeParallelCounter().accumulate_value(batch) == 1.5

    def test_timeline_monotone(self):
        batch = BitstreamBatch([[1, 0, 1, 0], [0, 1, 0, 1]])
        timeline = AccumulativeParallelCounter().timeline(batch)
        assert timeline.tolist() == [1, 2, 3, 4]

    def test_timeline_requires_2d(self):
        with pytest.raises(ValueError):
            AccumulativeParallelCounter().timeline(np.array([1, 0, 1], dtype=np.uint8))


class TestRegenerator:
    def test_value_preserved_exactly(self):
        # Whatever 1-count the (imperfect, LFSR-generated) input stream
        # actually has, regeneration through a full-period RNG keeps it.
        regen = Regenerator(VanDerCorput(width=8))
        stream = DigitalToStochastic(LFSR(width=8)).convert(100)
        assert regen.regenerate(stream).ones == stream.ones

    def test_group_regeneration_correlates(self):
        # Two streams from different RNGs (uncorrelated) become SCC=+1
        # after shared-RNG regeneration.
        x = DigitalToStochastic(LFSR(width=8)).convert(80)
        y = DigitalToStochastic(Halton(base=3, width=8)).convert(160)
        assert abs(scc(x.bits, y.bits)) < 0.3
        regen = Regenerator(VanDerCorput(width=8))
        batch = regen.regenerate_batch(BitstreamBatch(np.stack([x.bits, y.bits])))
        assert scc(batch.bits[0], batch.bits[1]) == 1.0

    def test_independent_regeneration_decorrelates(self):
        d2s = DigitalToStochastic(VanDerCorput(width=8))
        x = d2s.convert(100)
        y = DigitalToStochastic(VanDerCorput(width=8)).convert(90)
        assert scc(x.bits, y.bits) == 1.0
        out = Regenerator.regenerate_independent(
            [x, y], [VanDerCorput(width=8), Halton(base=3, width=8)]
        )
        assert abs(scc(out[0].bits, out[1].bits)) < 0.3

    def test_independent_requires_matching_lengths(self):
        with pytest.raises(CircuitConfigurationError):
            Regenerator.regenerate_independent([Bitstream("01")], [])
