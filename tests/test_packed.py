"""Packed <-> unpacked equivalence: the packed backend must agree bit for
bit with the byte-per-bit path on values, SCC, gate ops, and every routed
circuit, for arbitrary batches, odd lengths, and both encodings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.arith import (
    AbsSubtractor,
    AndMin,
    CAMax,
    CorDiv,
    Multiplier,
    OrMax,
    SaturatingAdder,
    ScaledAdder,
)
from repro.bitstream import (
    Bitstream,
    BitstreamBatch,
    PackedBitstreamBatch,
    batch_and,
    batch_mux,
    batch_not,
    batch_or,
    batch_scc,
    batch_values,
    batch_xor,
    pack_bits,
    scc_batch,
    scc_batch_packed,
    unpack_bits,
    words_per_stream,
)
from repro.bitstream.metrics import (
    _popcount_lut,
    overlap_counts,
    overlap_counts_packed,
    popcount_words,
)
from repro.core import Desynchronizer, SyncMax, Synchronizer
from repro.exceptions import EncodingError, LengthMismatchError

# Odd lengths on purpose: 1, sub-word, word-boundary +/- 1, multi-word.
LENGTHS = [1, 7, 63, 64, 65, 100, 128, 200, 256]


def random_bits(batch, n, seed=0, p=0.5):
    rng = np.random.default_rng(seed + 31 * n + batch)
    return (rng.random((batch, n)) < p).astype(np.uint8)


# --------------------------------------------------------------------- #
# Packing primitives
# --------------------------------------------------------------------- #


class TestPackingPrimitives:
    @pytest.mark.parametrize("n", LENGTHS)
    def test_roundtrip(self, n):
        bits = random_bits(9, n)
        assert np.array_equal(unpack_bits(pack_bits(bits), n), bits)

    @pytest.mark.parametrize("n", LENGTHS)
    def test_word_count(self, n):
        assert pack_bits(random_bits(3, n)).shape == (3, words_per_stream(n))

    def test_tail_bits_are_zero(self):
        words = pack_bits(np.ones((4, 100), dtype=np.uint8))
        assert (words[:, -1] >> np.uint64(100 - 64) == 0).all()

    def test_popcount_matches_lut_fallback(self):
        words = pack_bits(random_bits(32, 200))
        assert np.array_equal(popcount_words(words), _popcount_lut(words))

    @pytest.mark.parametrize("n", LENGTHS)
    def test_popcount_matches_unpacked_sum(self, n):
        bits = random_bits(16, n)
        assert np.array_equal(
            popcount_words(pack_bits(bits)), bits.sum(axis=1, dtype=np.int64)
        )

    def test_words_per_stream_rejects_nonpositive(self):
        with pytest.raises(EncodingError):
            words_per_stream(0)


# --------------------------------------------------------------------- #
# Metrics kernels
# --------------------------------------------------------------------- #


class TestPackedMetrics:
    @pytest.mark.parametrize("n", LENGTHS)
    def test_overlap_counts_equivalence(self, n):
        x, y = random_bits(20, n, seed=1), random_bits(20, n, seed=2)
        unpacked = overlap_counts(x, y)
        packed = overlap_counts_packed(pack_bits(x), pack_bits(y), n)
        for u, p in zip(unpacked, packed):
            assert np.array_equal(u, p)

    @pytest.mark.parametrize("n", LENGTHS)
    def test_scc_equivalence_is_exact(self, n):
        x, y = random_bits(40, n, seed=3), random_bits(40, n, seed=4)
        assert np.array_equal(
            scc_batch(x, y), scc_batch_packed(pack_bits(x), pack_bits(y), n)
        )

    def test_scc_constant_streams_degenerate_to_zero(self):
        zeros = np.zeros((2, 70), dtype=np.uint8)
        ones = np.ones((2, 70), dtype=np.uint8)
        assert (scc_batch_packed(pack_bits(zeros), pack_bits(ones), 70) == 0).all()

    def test_broadcasting_one_row(self):
        x, y = random_bits(1, 96, seed=5), random_bits(12, 96, seed=6)
        assert np.array_equal(
            scc_batch(x, y), scc_batch_packed(pack_bits(x), pack_bits(y), 96)
        )

    def test_word_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            overlap_counts_packed(
                pack_bits(random_bits(2, 64)), pack_bits(random_bits(2, 128)), 64
            )


# --------------------------------------------------------------------- #
# PackedBitstreamBatch
# --------------------------------------------------------------------- #


class TestPackedBatch:
    @pytest.mark.parametrize("encoding", ["unipolar", "bipolar"])
    @pytest.mark.parametrize("n", LENGTHS)
    def test_values_match(self, n, encoding):
        batch = BitstreamBatch(random_bits(11, n), encoding)
        assert np.array_equal(batch.to_packed().values, batch.values)

    @pytest.mark.parametrize("n", LENGTHS)
    def test_gate_ops_match(self, n):
        x = BitstreamBatch(random_bits(13, n, seed=7))
        y = BitstreamBatch(random_bits(13, n, seed=8))
        px, py = x.to_packed(), y.to_packed()
        for op in ("__and__", "__or__", "__xor__"):
            assert np.array_equal(
                getattr(px, op)(py).unpack().bits, getattr(x, op)(y).bits
            )
        assert np.array_equal((~px).unpack().bits, (~x).bits)

    def test_invert_masks_tail_padding(self):
        packed = PackedBitstreamBatch.pack(np.zeros((2, 70), dtype=np.uint8))
        assert (~packed).ones.tolist() == [70, 70]

    def test_scc_matches_unpacked(self):
        x = BitstreamBatch(random_bits(25, 256, seed=9))
        y = BitstreamBatch(random_bits(25, 256, seed=10))
        assert np.array_equal(x.to_packed().scc(y.to_packed()), x.scc(y))

    def test_mux_matches_where(self):
        s, x, y = (random_bits(6, 90, seed=k) for k in (11, 12, 13))
        expected = np.where(s == 1, y, x).astype(np.uint8)
        muxed = PackedBitstreamBatch.mux(
            *(PackedBitstreamBatch.pack(b) for b in (s, x, y))
        )
        assert np.array_equal(muxed.unpack().bits, expected)

    def test_stream_extraction_and_iteration(self):
        bits = random_bits(4, 75)
        packed = PackedBitstreamBatch.pack(bits)
        assert np.array_equal(packed.stream(2).bits, bits[2])
        assert [s.ones for s in packed] == [int(r.sum()) for r in bits]
        assert len(packed) == 4

    def test_pack_is_idempotent_and_kind_preserving(self):
        packed = PackedBitstreamBatch.pack(random_bits(3, 50))
        assert PackedBitstreamBatch.pack(packed) is packed

    def test_pack_accepts_bitstream(self):
        stream = Bitstream("0110101", "bipolar")
        packed = PackedBitstreamBatch.pack(stream)
        assert packed.batch_size == 1 and packed.encoding is stream.encoding
        assert packed.stream(0) == stream

    def test_constructor_masks_dirty_tail(self):
        dirty = np.full((1, 1), 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
        packed = PackedBitstreamBatch(dirty, 10)
        assert packed.ones.tolist() == [10]

    def test_length_mismatch_raises(self):
        x = PackedBitstreamBatch.pack(random_bits(2, 64))
        y = PackedBitstreamBatch.pack(random_bits(2, 65))
        with pytest.raises(LengthMismatchError):
            _ = x & y

    def test_encoding_mismatch_raises(self):
        x = PackedBitstreamBatch.pack(random_bits(2, 64), encoding="unipolar")
        y = PackedBitstreamBatch.pack(random_bits(2, 64), encoding="bipolar")
        with pytest.raises(EncodingError):
            _ = x ^ y

    def test_repr_mentions_shape(self):
        packed = PackedBitstreamBatch.pack(random_bits(5, 100))
        assert "batch=5" in repr(packed) and "n=100" in repr(packed)


# --------------------------------------------------------------------- #
# Dispatch layer
# --------------------------------------------------------------------- #


class TestDispatch:
    def setup_method(self):
        self.x = random_bits(8, 77, seed=20)
        self.y = random_bits(8, 77, seed=21)
        self.s = random_bits(8, 77, seed=22)
        self.px = PackedBitstreamBatch.pack(self.x)
        self.py = PackedBitstreamBatch.pack(self.y)
        self.ps = PackedBitstreamBatch.pack(self.s)

    def test_packed_operands_stay_packed(self):
        for fn, expected in [
            (batch_and, self.x & self.y),
            (batch_or, self.x | self.y),
            (batch_xor, self.x ^ self.y),
        ]:
            result = fn(self.px, self.py)
            assert isinstance(result, PackedBitstreamBatch)
            assert np.array_equal(result.unpack().bits, expected)
        assert isinstance(batch_not(self.px), PackedBitstreamBatch)
        assert isinstance(batch_mux(self.ps, self.px, self.py), PackedBitstreamBatch)

    def test_mixed_operands_fall_back_to_unpacked(self):
        result = batch_and(self.px, self.y)
        assert isinstance(result, np.ndarray)
        assert np.array_equal(result, self.x & self.y)

    def test_values_and_scc_agree_across_representations(self):
        assert np.array_equal(batch_values(self.px), batch_values(self.x))
        assert np.array_equal(batch_scc(self.px, self.py), batch_scc(self.x, self.y))

    def test_values_respect_encoding_for_every_kind(self):
        bits = "0011"
        stream = Bitstream(bits, "bipolar")
        batch = BitstreamBatch(np.array([[0, 0, 1, 1]], dtype=np.uint8), "bipolar")
        packed = batch.to_packed()
        assert batch_values(stream).tolist() == [0.0]
        assert batch_values(batch).tolist() == [0.0]
        assert batch_values(packed).tolist() == [0.0]
        # raw arrays carry no encoding: unipolar by convention
        assert batch_values(np.array([0, 0, 1, 1], dtype=np.uint8)).tolist() == [0.5]

    def test_mux_matches_unpacked(self):
        packed = batch_mux(self.ps, self.px, self.py)
        assert np.array_equal(
            packed.unpack().bits, batch_mux(self.s, self.x, self.y)
        )


# --------------------------------------------------------------------- #
# Circuit routing
# --------------------------------------------------------------------- #


class TestCircuitRouting:
    @pytest.mark.parametrize("n", [63, 64, 256])
    @pytest.mark.parametrize(
        "op",
        [Multiplier(), OrMax(), AndMin(), AbsSubtractor(), SaturatingAdder()],
        ids=lambda op: type(op).__name__,
    )
    def test_combinational_packed_equals_unpacked(self, op, n):
        x = BitstreamBatch(random_bits(17, n, seed=30))
        y = BitstreamBatch(random_bits(17, n, seed=31))
        packed = op.compute(x.to_packed(), y.to_packed())
        assert isinstance(packed, PackedBitstreamBatch)
        assert np.array_equal(packed.unpack().bits, op.compute(x, y).bits)

    def test_bipolar_multiplier_xnor_masks_tail(self):
        x = BitstreamBatch(random_bits(9, 70, seed=32), "bipolar")
        y = BitstreamBatch(random_bits(9, 70, seed=33), "bipolar")
        packed = Multiplier().compute(x.to_packed(), y.to_packed())
        assert np.array_equal(packed.unpack().bits, Multiplier().compute(x, y).bits)

    def test_scaled_adder_packed_select(self):
        x = BitstreamBatch(random_bits(10, 96, seed=34))
        y = BitstreamBatch(random_bits(10, 96, seed=35))
        s = BitstreamBatch(random_bits(1, 96, seed=36))
        unpacked = ScaledAdder().compute(x, y, select=s)
        for select in (s, s.to_packed()):
            packed = ScaledAdder().compute(x.to_packed(), y.to_packed(), select=select)
            assert isinstance(packed, PackedBitstreamBatch)
            assert np.array_equal(packed.unpack().bits, unpacked.bits)

    @pytest.mark.parametrize(
        "circuit",
        [Synchronizer(), Desynchronizer(), SyncMax()],
        ids=lambda c: type(c).__name__,
    )
    def test_sequential_circuits_convert_at_boundaries(self, circuit):
        x = BitstreamBatch(random_bits(12, 100, seed=40))
        y = BitstreamBatch(random_bits(12, 100, seed=41))
        if hasattr(circuit, "process_pair"):
            pox, poy = circuit.process_pair(x.to_packed(), y.to_packed())
            uox, uoy = circuit.process_pair(x, y)
            assert isinstance(pox, PackedBitstreamBatch)
            assert np.array_equal(pox.unpack().bits, uox.bits)
            assert np.array_equal(poy.unpack().bits, uoy.bits)
        else:
            packed = circuit.compute(x.to_packed(), y.to_packed())
            assert isinstance(packed, PackedBitstreamBatch)
            assert np.array_equal(packed.unpack().bits, circuit.compute(x, y).bits)

    @pytest.mark.parametrize(
        "op", [CAMax(), CorDiv()], ids=lambda op: type(op).__name__
    )
    def test_sequential_arith_convert_at_boundaries(self, op):
        x = BitstreamBatch(random_bits(12, 80, seed=42))
        y = BitstreamBatch(random_bits(12, 80, seed=43))
        packed = op.compute(x.to_packed(), y.to_packed())
        assert isinstance(packed, PackedBitstreamBatch)
        assert np.array_equal(packed.unpack().bits, op.compute(x, y).bits)

    def test_sweep_backends_agree(self):
        from repro.analysis import measure_pair_transform

        packed = measure_pair_transform(
            Synchronizer(), "vdc", "halton3", n=64, step=8, backend="packed"
        )
        unpacked = measure_pair_transform(
            Synchronizer(), "vdc", "halton3", n=64, step=8, backend="unpacked"
        )
        assert packed.input_scc == pytest.approx(unpacked.input_scc, abs=1e-12)
        assert packed.output_scc == pytest.approx(unpacked.output_scc, abs=1e-12)
        assert packed.bias_x == pytest.approx(unpacked.bias_x, abs=1e-12)
        assert packed.bias_y == pytest.approx(unpacked.bias_y, abs=1e-12)

    def test_sweep_rejects_unknown_backend(self):
        from repro.analysis import measure_pair_transform

        with pytest.raises(ValueError):
            measure_pair_transform(
                Synchronizer(), "vdc", "vdc", n=16, step=8, backend="simd"
            )


# --------------------------------------------------------------------- #
# Property-based equivalence
# --------------------------------------------------------------------- #


def bit_matrices(max_batch=6, max_len=130):
    return st.tuples(
        st.integers(1, max_batch), st.integers(1, max_len)
    ).flatmap(
        lambda shape: arrays(np.uint8, shape, elements=st.integers(0, 1))
    )


class TestPackedProperties:
    @given(bit_matrices())
    @settings(max_examples=120, deadline=None)
    def test_roundtrip_any_shape(self, bits):
        assert np.array_equal(unpack_bits(pack_bits(bits), bits.shape[1]), bits)

    @given(bit_matrices())
    @settings(max_examples=120, deadline=None)
    def test_ones_and_scc_any_shape(self, bits):
        batch = BitstreamBatch(bits) if bits.size else None
        packed = batch.to_packed()
        assert np.array_equal(packed.ones, batch.ones)
        assert np.array_equal(packed.scc(packed), batch.scc(batch))

    @given(bit_matrices())
    @settings(max_examples=120, deadline=None)
    def test_demorgan_holds_packed(self, bits):
        x = PackedBitstreamBatch.pack(bits)
        y = PackedBitstreamBatch.pack(np.roll(bits, 1, axis=1))
        assert np.array_equal(
            (~(x & y)).unpack().bits, ((~x) | (~y)).unpack().bits
        )
