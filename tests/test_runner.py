"""Tests for the experiment orchestration layer (repro.runner)."""

import json
import os

import pytest

from repro.analysis import table2, table3
from repro.analysis.experiments import ExperimentResult
from repro.runner import (
    FIDELITIES,
    SPEC_REGISTRY,
    ResultStore,
    code_version,
    execute_shard,
    get_spec,
    jsonify,
    load_results,
    run_all,
    run_many,
    run_spec,
    write_archives,
    write_experiments_md,
)
from repro.runner.workers import ShardTask


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestSpecs:
    def test_registry_covers_every_experiment(self):
        from repro.analysis import ALL_EXPERIMENTS

        assert set(SPEC_REGISTRY) == set(ALL_EXPERIMENTS)

    def test_every_spec_has_all_fidelities(self):
        for spec in SPEC_REGISTRY.values():
            for fidelity in FIDELITIES:
                assert fidelity in spec.fidelities

    def test_table2_expands_into_15_shards(self):
        spec = get_spec("table2")
        shards = spec.shards(spec.params("smoke"))
        assert len(shards) == 15
        assert shards[0].label == "synchronizer/vdc+halton3"
        assert shards[0].kwargs["config"] == ("synchronizer", "vdc", "halton3")
        assert "configs" not in shards[0].kwargs

    def test_single_shard_specs(self):
        for name in ("table1", "fig1", "claims", "power_breakdown",
                     "fault_tolerance", "propagation"):
            spec = get_spec(name)
            assert spec.shard_count(spec.params("smoke")) == 1

    def test_exhaustive_matches_bench_settings(self):
        # The archives under benchmarks/results/ were generated with these
        # parameters; the exhaustive preset must reproduce them exactly.
        assert get_spec("table2").params("exhaustive") == {
            "n": 256, "step": 1,
            "configs": get_spec("table2").fidelities["exhaustive"]["configs"],
        }
        assert get_spec("table4").params("exhaustive")["image_size"] == 32
        assert get_spec("ablation_save_depth").params("exhaustive")["depths"] == (1, 2, 4, 8, 16)

    def test_overrides_apply_only_to_known_params(self):
        spec = get_spec("table2")
        params = spec.params("default", {"step": 32, "bogus": 1})
        assert params["step"] == 32
        assert "bogus" not in params

    def test_unknown_spec_raises(self):
        with pytest.raises(KeyError, match="unknown experiment spec"):
            get_spec("table99")

    def test_unknown_fidelity_raises(self):
        with pytest.raises(KeyError, match="no fidelity"):
            get_spec("table2").params("ultra")

    def test_grid_summary_reports_pairs(self):
        spec = get_spec("table2")
        assert "4096 pairs/shard" in spec.grid_summary(spec.params("smoke"))


class TestStore:
    def test_round_trip(self, store):
        key = store.shard_key("t", "s", "m:f", {"a": 1}, None)
        assert key not in store
        store.put(key, {"x": 1.5}, meta={"spec": "t"})
        assert key in store
        assert store.get(key) == {"x": 1.5}

    def test_key_depends_on_everything(self, store):
        base = store.shard_key("t", "s", "m:f", {"a": 1}, None)
        assert store.shard_key("t2", "s", "m:f", {"a": 1}, None) != base
        assert store.shard_key("t", "s2", "m:f", {"a": 1}, None) != base
        assert store.shard_key("t", "s", "m:g", {"a": 1}, None) != base
        assert store.shard_key("t", "s", "m:f", {"a": 2}, None) != base
        assert store.shard_key("t", "s", "m:f", {"a": 1}, 7) != base

    def test_code_version_changes_keys(self, tmp_path):
        a = ResultStore(tmp_path, version="aaaa")
        b = ResultStore(tmp_path, version="bbbb")
        assert (a.shard_key("t", "s", "m:f", {}, None)
                != b.shard_key("t", "s", "m:f", {}, None))

    def test_stale_detection_and_prune(self, tmp_path):
        old = ResultStore(tmp_path, version="old0")
        key = old.shard_key("t", "s", "m:f", {}, None)
        old.put(key, {"x": 1})
        new = ResultStore(tmp_path, version="new0")
        assert new.stale_keys() == [key]
        assert new.prune_stale() == 1
        assert new.stale_keys() == []

    def test_jsonify_numpy(self):
        import numpy as np

        out = jsonify({"a": np.float64(0.5), "b": np.int64(3),
                       "c": (1, 2), "d": np.arange(2), "e": np.bool_(True)})
        assert out == {"a": 0.5, "b": 3, "c": [1, 2], "d": [0, 1], "e": True}
        assert json.dumps(out)  # JSON-native all the way down

    def test_code_version_is_stable(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16


class TestWorkers:
    def test_execute_single_shard_serializes_result(self):
        spec = get_spec("table1")
        [shard] = spec.shards(spec.params("smoke"))
        payload = execute_shard(ShardTask("table1", 0, "table1", shard.fn, shard.kwargs))
        assert payload["experiment_id"] == "table1"
        assert json.dumps(payload)

    def test_seed_reaches_seed_accepting_shards(self):
        spec = get_spec("fault_tolerance")
        [shard] = spec.shards(spec.params("smoke"))
        base = execute_shard(ShardTask("fault_tolerance", 0, "s", shard.fn, shard.kwargs))
        same = execute_shard(ShardTask("fault_tolerance", 0, "s", shard.fn, shard.kwargs))
        other = execute_shard(
            ShardTask("fault_tolerance", 0, "s", shard.fn, shard.kwargs, seed=123)
        )
        assert base == same
        assert base != other

    def test_ambient_seed_reaches_factory_rngs(self):
        shard = get_spec("table2").shards(get_spec("table2").params("smoke"))[1]
        assert shard.label == "synchronizer/lfsr+vdc"  # lfsr is seedable
        base = execute_shard(ShardTask("table2", 1, shard.label, shard.fn, shard.kwargs))
        seeded = execute_shard(
            ShardTask("table2", 1, shard.label, shard.fn, shard.kwargs, seed=99)
        )
        assert base["output_scc"] != seeded["output_scc"]


class TestScheduler:
    def test_sharded_equals_direct(self, store):
        report = run_spec("table2", fidelity="smoke", store=store, log=None)
        assert report.result == table2(n=256, step=4)
        assert report.shard_count == 15
        assert report.computed == 15 and report.cache_hits == 0

    def test_second_run_is_all_cache_hits(self, store):
        run_spec("table3", fidelity="smoke", store=store, log=None)
        lines = []
        report = run_spec("table3", fidelity="smoke", store=store, log=lines.append)
        assert report.all_from_cache
        assert report.cache_hits == 5 and report.computed == 0
        assert sum(line.startswith("[runner] cache hit ") for line in lines) == 5
        assert not any("cache miss" in line for line in lines)
        assert report.result == table3(n=256, step=4)

    def test_force_recomputes(self, store):
        run_spec("table1", store=store, log=None)
        report = run_spec("table1", store=store, force=True, log=None)
        assert report.computed == 1 and report.cache_hits == 0

    def test_parallel_equals_serial(self, tmp_path):
        serial = run_spec(
            "table2", fidelity="smoke", store=ResultStore(tmp_path / "a"), log=None
        )
        parallel = run_spec(
            "table2", fidelity="smoke", jobs=4,
            store=ResultStore(tmp_path / "b"), log=None,
        )
        assert parallel.result == serial.result

    def test_seed_isolates_cache_entries(self, store):
        base = run_spec("table2", fidelity="smoke", store=store, log=None)
        seeded = run_spec("table2", fidelity="smoke", seed=11, store=store, log=None)
        assert seeded.computed == 15  # different content addresses
        assert seeded.result != base.result
        again = run_spec("table2", fidelity="smoke", seed=11, store=store, log=None)
        assert again.all_from_cache
        assert again.result == seeded.result

    def test_fidelity_change_recomputes(self, store):
        run_spec("table3", fidelity="smoke", store=store, log=None)
        report = run_spec(
            "table3", fidelity="smoke", overrides={"step": 8}, store=store, log=None
        )
        assert report.computed == 5

    def test_run_many_pools_specs(self, store):
        reports = run_many(["table1", "fig1", "claims"], store=store, log=None)
        assert [r.spec for r in reports] == ["table1", "fig1", "claims"]
        assert all(isinstance(r.result, ExperimentResult) for r in reports)

    def test_failing_shard_keeps_completed_payloads(self, store, monkeypatch):
        """Payloads persist as each shard finishes: a crash mid-run loses
        only the shards that never completed."""
        import repro.runner.scheduler as scheduler_module

        real = scheduler_module.execute_shard

        def flaky(task):
            if task.label == "Sync max":  # third of table3's five shards
                raise RuntimeError("boom")
            return real(task)

        monkeypatch.setattr(scheduler_module, "execute_shard", flaky)
        with pytest.raises(RuntimeError, match="boom"):
            run_spec("table3", fidelity="smoke", store=store, log=None)
        monkeypatch.setattr(scheduler_module, "execute_shard", real)
        report = run_spec("table3", fidelity="smoke", store=store, log=None)
        assert report.cache_hits == 2 and report.computed == 3
        assert report.result == table3(n=256, step=4)

    def test_interrupted_run_resumes(self, store):
        # Simulate an interrupt: only some shards made it into the store.
        spec = get_spec("table3")
        params = spec.params("smoke")
        for shard in spec.shards(params)[:2]:
            key = store.shard_key(shard.spec, shard.label, shard.fn_ref,
                                  shard.kwargs, None)
            store.put(key, execute_shard(ShardTask(
                shard.spec, shard.index, shard.label, shard.fn, shard.kwargs)))
        report = run_spec("table3", fidelity="smoke", store=store, log=None)
        assert report.cache_hits == 2 and report.computed == 3
        assert report.result == table3(n=256, step=4)


class TestReport:
    def test_archives_round_trip(self, store, tmp_path):
        reports = run_many(["table1", "fig1"], fidelity="smoke", store=store, log=None)
        out = tmp_path / "archives"
        results = load_results(store, fidelity="smoke", specs=["table1", "fig1"])
        assert write_archives(results, out, log=None) == 0
        for report in reports:
            archived = (out / f"{report.spec}.txt").read_text()
            assert archived == report.result.to_text() + "\n"

    def test_check_mode_detects_drift(self, store, tmp_path):
        run_spec("table1", fidelity="smoke", store=store, log=None)
        out = tmp_path / "archives"
        results = load_results(store, fidelity="smoke", specs=["table1"])
        write_archives(results, out, log=None)
        assert write_archives(results, out, check=True, log=None) == 0
        (out / "table1.txt").write_text("tampered\n")
        assert write_archives(results, out, check=True, log=None) == 1

    def test_incomplete_spec_reported(self, store, tmp_path):
        results = load_results(store, fidelity="smoke", specs=["table2"])
        assert not results[0].complete
        assert write_archives(results, tmp_path, log=None) == 1

    def test_stale_manifest_not_served(self, tmp_path):
        old = ResultStore(tmp_path / "s", version="old0")
        run_spec("table1", fidelity="smoke", store=old, log=None)
        new = ResultStore(tmp_path / "s", version="new0")
        results = load_results(new, fidelity="smoke", specs=["table1"])
        assert not results[0].complete and results[0].stale

    def test_experiments_md(self, store, tmp_path):
        run_many(["table1", "fig1"], fidelity="smoke", store=store, log=None)
        results = load_results(store, fidelity="smoke", specs=["table1", "fig1"])
        path = write_experiments_md(results, tmp_path / "EXPERIMENTS.md", log=None)
        text = path.read_text()
        assert "## table1 — PASS" in text
        assert "Table I" in text


@pytest.mark.slow
class TestArchiveFidelity:
    def test_exhaustive_regeneration_matches_committed_archives(self, store, tmp_path):
        """The cheap exhaustive specs, end to end: runner -> store ->
        report must reproduce the committed benchmark archives byte for
        byte (the full set is enforced by the benchmark suite and the
        runner-smoke CI job; these three keep the contract in tier-1)."""
        import pathlib

        archive_dir = pathlib.Path(__file__).parent.parent / "benchmarks" / "results"
        specs = ["fig2", "fault_tolerance", "propagation"]
        run_many(specs, fidelity="exhaustive", store=store, log=None)
        out = tmp_path / "regen"
        results = load_results(store, fidelity="exhaustive", specs=specs)
        assert write_archives(results, out, log=None) == 0
        for name in specs:
            assert (out / f"{name}.txt").read_bytes() == (
                archive_dir / f"{name}.txt"
            ).read_bytes(), f"{name} archive drifted"


@pytest.mark.slow
class TestSchedulerSlow:
    def test_run_all_smoke(self, store):
        reports = run_all(fidelity="smoke", store=store, log=None)
        assert len(reports) == len(SPEC_REGISTRY)
        failed = [r.spec for r in reports if not r.result.all_checks_pass]
        assert not failed, f"shape checks failed for: {failed}"
        again = run_all(fidelity="smoke", store=store, log=None)
        assert all(r.all_from_cache for r in again)

    @pytest.mark.skipif(
        len(os.sched_getaffinity(0)) < 4 if hasattr(os, "sched_getaffinity") else True,
        reason="parallel speedup needs >= 4 CPUs",
    )
    def test_parallel_speedup_floor(self, tmp_path):
        import time

        t = time.perf_counter()
        run_all(fidelity="smoke", jobs=1, store=ResultStore(tmp_path / "serial"), log=None)
        serial = time.perf_counter() - t
        t = time.perf_counter()
        run_all(fidelity="smoke", jobs=4, store=ResultStore(tmp_path / "par"), log=None)
        parallel = time.perf_counter() - t
        assert serial / parallel >= 3.0, (
            f"expected >=3x at --jobs 4, got {serial / parallel:.2f}x "
            f"({serial:.2f}s vs {parallel:.2f}s)"
        )
