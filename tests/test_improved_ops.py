"""Unit tests for the improved SC operators (paper Fig. 5)."""

import numpy as np
import pytest

from repro.bitstream import Bitstream, correlated_pair
from repro.core import (
    Desynchronizer,
    DesyncSaturatingAdder,
    SeriesPair,
    Synchronizer,
    SyncMax,
    SyncMin,
)
from repro.exceptions import CircuitConfigurationError

from tests.helpers import make_pair_batch
from repro.rng import Halton, VanDerCorput


@pytest.fixture
def uncorrelated_sweep():
    return make_pair_batch(VanDerCorput(8), Halton(3, 8), step=16)


class TestSyncMax:
    def test_accurate_on_uncorrelated_inputs(self, uncorrelated_sweep):
        x, y, xs, ys = uncorrelated_sweep
        z = SyncMax().compute(x, y)
        err = np.abs(z.mean(axis=1) - np.maximum(xs, ys) / 256).mean()
        assert err < 0.01

    def test_beats_bare_or(self, uncorrelated_sweep):
        x, y, xs, ys = uncorrelated_sweep
        expected = np.maximum(xs, ys) / 256
        sync_err = np.abs(SyncMax().compute(x, y).mean(axis=1) - expected).mean()
        or_err = np.abs((x | y).mean(axis=1) - expected).mean()
        assert sync_err < or_err / 5

    def test_near_exact_on_positively_correlated_inputs(self):
        # Nested-burst inputs: the synchronizer may hold one trailing saved
        # bit, so the max is exact to within one bit of the stream.
        x, y = correlated_pair(0.25, 0.625, 64, scc=1)
        assert abs(SyncMax().compute(x, y).value - 0.625) <= 1 / 64

    def test_accepts_custom_transform(self, uncorrelated_sweep):
        x, y, xs, ys = uncorrelated_sweep
        deep = SyncMax(transform=SeriesPair([Synchronizer(1), Synchronizer(1)]))
        err = np.abs(deep.compute(x, y).mean(axis=1) - np.maximum(xs, ys) / 256).mean()
        assert err < 0.01

    def test_rejects_non_transform(self):
        with pytest.raises(CircuitConfigurationError):
            SyncMax(transform="synchronizer")

    def test_expected(self):
        assert SyncMax.expected(0.3, 0.8) == 0.8

    def test_transform_property(self):
        op = SyncMax(depth=2)
        assert op.transform.depth == 2


class TestSyncMin:
    def test_accurate_on_uncorrelated_inputs(self, uncorrelated_sweep):
        x, y, xs, ys = uncorrelated_sweep
        z = SyncMin().compute(x, y)
        err = np.abs(z.mean(axis=1) - np.minimum(xs, ys) / 256).mean()
        assert err < 0.01

    def test_beats_bare_and(self, uncorrelated_sweep):
        x, y, xs, ys = uncorrelated_sweep
        expected = np.minimum(xs, ys) / 256
        sync_err = np.abs(SyncMin().compute(x, y).mean(axis=1) - expected).mean()
        and_err = np.abs((x & y).mean(axis=1) - expected).mean()
        assert sync_err < and_err / 5

    def test_min_max_consistency(self, uncorrelated_sweep):
        # max + min should equal x + y (both are value-preserving pairings).
        x, y, xs, ys = uncorrelated_sweep
        max_v = SyncMax().compute(x, y).mean(axis=1)
        min_v = SyncMin().compute(x, y).mean(axis=1)
        assert np.abs((max_v + min_v) - (xs + ys) / 256).mean() < 0.02

    def test_expected(self):
        assert SyncMin.expected(0.3, 0.8) == 0.3


class TestDesyncSaturatingAdder:
    def test_accurate_on_uncorrelated_inputs(self, uncorrelated_sweep):
        x, y, xs, ys = uncorrelated_sweep
        z = DesyncSaturatingAdder().compute(x, y)
        expected = np.minimum(1.0, (xs + ys) / 256)
        assert np.abs(z.mean(axis=1) - expected).mean() < 0.01

    def test_beats_bare_or(self, uncorrelated_sweep):
        x, y, xs, ys = uncorrelated_sweep
        expected = np.minimum(1.0, (xs + ys) / 256)
        improved = np.abs(DesyncSaturatingAdder().compute(x, y).mean(axis=1) - expected).mean()
        bare = np.abs((x | y).mean(axis=1) - expected).mean()
        assert improved < bare / 3

    def test_saturates_at_one(self):
        x, y = correlated_pair(0.75, 0.75, 64, scc=0, seed=0)
        assert DesyncSaturatingAdder().compute(x, y).value > 0.95

    def test_exact_on_negatively_correlated_inputs(self):
        x, y = correlated_pair(0.25, 0.5, 64, scc=-1)
        assert DesyncSaturatingAdder().compute(x, y).value == pytest.approx(0.75)

    def test_custom_desynchronizer_depth(self, uncorrelated_sweep):
        x, y, xs, ys = uncorrelated_sweep
        deep = DesyncSaturatingAdder(transform=Desynchronizer(depth=4))
        expected = np.minimum(1.0, (xs + ys) / 256)
        assert np.abs(deep.compute(x, y).mean(axis=1) - expected).mean() < 0.01

    def test_expected_clips(self):
        assert DesyncSaturatingAdder.expected(0.8, 0.8) == 1.0


class TestKindPreservation:
    def test_streams_in_streams_out(self):
        x = Bitstream("01100110")
        y = Bitstream("00111100")
        out = SyncMax().compute(x, y)
        assert isinstance(out, Bitstream)
        assert out.length == 8
