"""Observability layer (repro.obs).

Pins the tracing contract end to end: span nesting and attribution in
one process, metric merge semantics, cross-process aggregation under
fork (including second-level forks: a shard-style worker that itself
forks span workers), exporter output against golden files, and the
load-bearing invariant that enabling tracing never changes a result bit
(the cross-backend equivalence matrix run inside a session).
"""

import json
import multiprocessing
import pathlib
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import engine, obs
from repro.engine.library import GRAPH_LIBRARY, build_graph
from repro.obs import metrics as obs_metrics
from repro.obs import tracer as obs_tracer
from tests.helpers import assert_backends_equivalent

GOLDEN = pathlib.Path(__file__).parent / "golden"


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """Every test must leave the module-global tracer torn down."""
    assert obs.current_tracer() is None
    yield
    assert obs.current_tracer() is None


# ---------------------------------------------------------------------- #
# Disabled path
# ---------------------------------------------------------------------- #

class TestDisabled:
    def test_span_returns_shared_null_handle(self):
        handle = obs.span("engine.execute", length=64)
        assert handle is obs.span("anything.else")
        with handle as sp:
            sp.annotate(extra=1)  # no-op, no error

    def test_counters_are_noops(self):
        obs.counter_add("engine.plan.cache.hit")
        obs.gauge_set("g", 3)
        obs.histogram_record("h", 17)
        assert obs.metrics_snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_enabled_reflects_session_state(self):
        assert not obs.enabled()
        with obs.observe():
            assert obs.enabled()
        assert not obs.enabled()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            obs.stop()

    def test_nested_start_raises(self):
        with obs.observe():
            with pytest.raises(RuntimeError):
                obs.start()


# ---------------------------------------------------------------------- #
# Span tree
# ---------------------------------------------------------------------- #

class TestSpanTree:
    def test_nesting_parent_depth_category(self):
        with obs.observe() as trace:
            with obs.span("runner.run_many", jobs=2):
                with obs.span("runner.plan"):
                    pass
                with obs.span("store.write", key="abc"):
                    pass
        names = [s["name"] for s in trace.spans]
        assert names == ["runner.run_many", "runner.plan", "store.write"]
        root, plan, write = trace.spans
        assert root["parent"] == -1 and root["depth"] == 0
        assert plan["parent"] == 0 and plan["depth"] == 1
        assert write["parent"] == 0 and write["depth"] == 1
        assert root["cat"] == "runner" and write["cat"] == "store"
        assert root["args"] == {"jobs": 2}

    def test_annotate_merges_into_args(self):
        with obs.observe() as trace:
            with obs.span("engine.plan.compile", nodes=4) as sp:
                sp.annotate(levels=2, fsm=1)
        assert trace.spans[0]["args"] == {"nodes": 4, "levels": 2, "fsm": 1}

    def test_wall_and_cpu_times_recorded(self):
        with obs.observe() as trace:
            with obs.span("engine.execute"):
                time.sleep(0.01)
        rec = trace.spans[0]
        assert rec["dur"] >= 0.01
        assert rec["cpu"] >= 0.0
        assert rec["t0"] >= 0.0

    def test_exception_still_closes_span(self):
        with obs.observe() as trace:
            with pytest.raises(ValueError):
                with obs.span("engine.execute"):
                    raise ValueError("boom")
        assert trace.spans[0]["dur"] >= 0.0
        # The stack unwound: a sibling opened afterwards is a root.
        with obs.observe() as trace2:
            with obs.span("kernels.compile"):
                pass
        assert trace2.spans[0]["depth"] == 0

    def test_memory_attribution_opt_in(self):
        with obs.observe(memory=True) as trace:
            with obs.span("engine.execute"):
                _ = np.zeros(1 << 16, dtype=np.uint8)
        rec = trace.spans[0]
        assert "mem_peak" in rec and rec["mem_peak"] > 0
        assert "mem_net" in rec
        # Off by default.
        with obs.observe() as plain:
            with obs.span("engine.execute"):
                pass
        assert "mem_peak" not in plain.spans[0]

    def test_trace_helpers(self):
        with obs.observe() as trace:
            with obs.span("a.x"):
                pass
            with obs.span("a.x"):
                pass
            with obs.span("b.y"):
                pass
        assert len(trace.by_name("a.x")) == 2
        assert trace.processes == [trace.meta["origin_pid"]]


# ---------------------------------------------------------------------- #
# Metrics registry
# ---------------------------------------------------------------------- #

class TestMetrics:
    def test_counter_gauge_histogram_shapes(self):
        with obs.observe() as trace:
            obs.counter_add("c", 2)
            obs.counter_add("c")
            obs.gauge_set("g", 1)
            obs.gauge_set("g", 7)
            obs.histogram_record("h", 3)
            obs.histogram_record("h", 100)
        m = trace.metrics
        assert m["counters"]["c"] == 3
        assert m["gauges"]["g"] == 7
        hist = m["histograms"]["h"]
        assert hist["count"] == 2 and hist["sum"] == 103
        assert hist["min"] == 3 and hist["max"] == 100
        assert hist["buckets"] == {"<=2^2": 1, "<=2^7": 1}

    def test_merge_semantics(self):
        a = {
            "counters": {"c": 2},
            "gauges": {"g": 1},
            "histograms": {"h": {"count": 1, "sum": 3, "min": 3, "max": 3,
                                 "buckets": {"<=2^2": 1}}},
        }
        obs_metrics.reset()
        try:
            obs_metrics.merge(a)
            obs_metrics.merge({
                "counters": {"c": 5, "d": 1},
                "gauges": {"g": 9},
                "histograms": {"h": {"count": 2, "sum": 20, "min": 4,
                                     "max": 16, "buckets": {"<=2^4": 2}}},
            })
            merged = obs_metrics.snapshot()
        finally:
            obs_metrics.reset()
        assert merged["counters"] == {"c": 7, "d": 1}
        assert merged["gauges"]["g"] == 9
        hist = merged["histograms"]["h"]
        assert hist["count"] == 3 and hist["sum"] == 23
        assert hist["min"] == 3 and hist["max"] == 16
        assert hist["buckets"] == {"<=2^2": 1, "<=2^4": 2}

    def test_bucket_labels_are_log2_ceilings(self):
        assert obs_metrics._bucket(0) == "<=2^0"
        assert obs_metrics._bucket(1) == "<=2^0"
        assert obs_metrics._bucket(2) == "<=2^1"
        assert obs_metrics._bucket(3) == "<=2^2"
        assert obs_metrics._bucket(1024) == "<=2^10"
        assert obs_metrics._bucket(1025) == "<=2^11"


# ---------------------------------------------------------------------- #
# Instrumented stack (single process)
# ---------------------------------------------------------------------- #

class TestInstrumentation:
    def test_plan_cache_counters_and_compile_span(self):
        graph = build_graph("fsm_zoo")
        engine.clear_cache()
        with obs.observe() as trace:
            plan = engine.compile(graph)
            engine.compile(graph)
        counters = trace.metrics["counters"]
        assert counters["engine.plan.cache.miss"] == 1
        assert counters["engine.plan.cache.hit"] == 1
        compile_spans = trace.by_name("engine.plan.compile")
        assert len(compile_spans) == 1
        assert compile_spans[0]["args"]["nodes"] > 0
        assert plan is engine.compile(graph)

    def test_streaming_tile_counters(self):
        plan = engine.compile(build_graph("fsm_zoo"))
        with obs.observe() as trace:
            plan.run_streaming(1 << 10, tile_words=2)
        counters = trace.metrics["counters"]
        assert counters["engine.stream.tiles"] == 8
        assert counters["engine.stream.words"] == 16
        walk = trace.by_name("engine.stream.walk")
        assert walk and walk[0]["args"]["tiles"] == 8
        stream = trace.by_name("engine.stream")
        assert stream and walk[0]["parent"] == trace.spans.index(stream[0])


# ---------------------------------------------------------------------- #
# Cross-process aggregation
# ---------------------------------------------------------------------- #

def _shard_like_worker(length):
    """Module-level worker: runs the parallel tile scheduler *from a
    forked child* — a second-level fork, like a runner shard running a
    ``jobs>1`` streaming audit."""
    plan = engine.compile(build_graph("fsm_zoo"))
    result = plan.run_streaming(length, tile_words=2, jobs=2)
    return int(sum(int(np.sum(v)) for v in result.ones.values()))


def _fork_pool(workers):
    from concurrent.futures import ProcessPoolExecutor

    context = multiprocessing.get_context("fork")
    return ProcessPoolExecutor(max_workers=workers, mp_context=context)


class TestCrossProcess:
    def test_parallel_streaming_merges_worker_spans(self):
        plan = engine.compile(build_graph("fsm_zoo"))
        baseline = plan.run_streaming(1 << 12, tile_words=2)
        with obs.observe() as trace:
            traced = plan.run_streaming(1 << 12, tile_words=2, jobs=2)
        assert len(trace.processes) >= 2  # origin + span workers
        worker_pids = set(trace.processes[1:])
        evaluate = trace.by_name("engine.parallel.evaluate")
        assert {s["pid"] for s in evaluate} <= worker_pids
        assert {s["pid"] for s in evaluate} == worker_pids
        counters = trace.metrics["counters"]
        # Fork-per-call forks span workers inside the session; an
        # already-warm persistent pool forks nothing — its workers adopt
        # the session instead. Either way the worker spans merged above.
        assert (
            counters.get("process.forks", 0) >= 2
            or counters.get("engine.parallel.pooled", 0) >= 1
        )
        for name in baseline.ones:
            assert baseline.ones[name] == traced.ones[name]

    def test_timestamps_align_on_one_timeline(self):
        plan = engine.compile(build_graph("fsm_zoo"))
        with obs.observe() as trace:
            plan.run_streaming(1 << 12, tile_words=2, jobs=2)
        session_end = trace.meta["duration_s"]
        for rec in trace.spans:
            assert 0.0 <= rec["t0"] <= session_end
            assert rec["t0"] + rec["dur"] <= session_end + 0.05

    def test_second_level_fork_merges_exactly_once(self):
        with obs.observe() as trace:
            with _fork_pool(1) as pool:
                total = pool.submit(_shard_like_worker, 1 << 12).result()
            absorbed = obs.collect_children()
        assert total > 0
        assert absorbed >= 2  # the mid-level child + its span workers
        # origin + mid-level worker + at least one grandchild span worker
        assert len(trace.processes) >= 3
        # Grandchild spans appear once, offset-linked to their own roots.
        for rec in trace.spans:
            if rec["parent"] >= 0:
                parent = trace.spans[rec["parent"]]
                assert parent["pid"] == rec["pid"]
                assert parent["depth"] == rec["depth"] - 1

    def test_child_buffers_do_not_leak_between_sessions(self):
        plan = engine.compile(build_graph("fsm_zoo"))
        with obs.observe() as first:
            plan.run_streaming(1 << 12, tile_words=2, jobs=2)
        with obs.observe() as second:
            pass
        assert second.spans == []
        assert first.spans != []


# ---------------------------------------------------------------------- #
# Exporters
# ---------------------------------------------------------------------- #

def _fixed_trace():
    """A deterministic finished Trace for golden-file exports."""
    return obs.Trace(
        spans=[
            {"name": "runner.run_many", "cat": "runner", "t0": 0.0,
             "dur": 0.5, "cpu": 0.25, "pid": 1000, "tid": 1000,
             "parent": -1, "depth": 0, "args": {"specs": 1, "jobs": 2}},
            {"name": "runner.plan", "cat": "runner", "t0": 0.001,
             "dur": 0.002, "cpu": 0.002, "pid": 1000, "tid": 1000,
             "parent": 0, "depth": 1, "args": {"shards": 3}},
            {"name": "store.write", "cat": "store", "t0": 0.4,
             "dur": 0.0015, "cpu": 0.001, "pid": 1000, "tid": 1000,
             "parent": 0, "depth": 1, "args": {"key": "abcdef012345"}},
            {"name": "runner.shard", "cat": "runner", "t0": 0.01,
             "dur": 0.35, "cpu": 0.34, "pid": 1001, "tid": 1001,
             "parent": -1, "depth": 0,
             "args": {"spec": "table2", "shard": "synchronizer/lfsr+vdc"}},
        ],
        metrics={
            "counters": {"engine.plan.cache.hit": 2,
                         "engine.plan.cache.miss": 1,
                         "runner.cache.hit": 1, "runner.cache.miss": 2,
                         "store.write": 2, "process.forks": 1},
            "gauges": {},
            "histograms": {"shard.ms": {"count": 2, "sum": 700, "min": 300,
                                        "max": 400, "buckets": {"<=2^9": 2}}},
        },
        meta={"origin_pid": 1000, "started_unix": 1700000000.0,
              "duration_s": 0.5, "memory": False},
    )


class TestExporters:
    def test_chrome_trace_golden(self):
        doc = obs.to_chrome_trace(_fixed_trace())
        golden = json.loads((GOLDEN / "obs_trace.json").read_text())
        assert doc == golden

    def test_stats_doc_golden(self):
        doc = obs.stats_doc(_fixed_trace())
        golden = json.loads((GOLDEN / "obs_stats.json").read_text())
        assert doc == golden

    def test_chrome_trace_validates(self):
        doc = obs.to_chrome_trace(_fixed_trace())
        counts = obs.validate_chrome_trace(doc)
        assert counts == {"X": 4, "M": 2}

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            obs.validate_chrome_trace({})
        with pytest.raises(ValueError):
            obs.validate_chrome_trace({"traceEvents": []})
        doc = obs.to_chrome_trace(_fixed_trace())
        doc["traceEvents"][2]["ph"] = "Q"
        with pytest.raises(ValueError):
            obs.validate_chrome_trace(doc)

    def test_write_chrome_trace_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(_fixed_trace(), path)
        assert obs.validate_chrome_trace(json.loads(path.read_text()))

    def test_derived_rates(self):
        doc = obs.stats_doc(_fixed_trace())
        assert doc["derived"]["plan_cache_hit_rate"] == pytest.approx(2 / 3)
        assert doc["derived"]["runner_cache_hit_rate"] == pytest.approx(1 / 3)
        assert doc["derived"]["seq_memo_hit_rate"] is None

    def test_render_stats_handles_missing_denominators(self):
        text = obs.render_stats(obs.stats_doc(_fixed_trace()))
        assert "n/a" in text  # seq memo rate has no observations
        assert "66.7%" in text
        assert "runner.shard" in text

    def test_profile_tree_groups_by_ancestry(self):
        text = obs.profile_tree(_fixed_trace())
        lines = text.splitlines()
        assert any(line.startswith("runner.run_many") for line in lines)
        assert any(line.startswith("  runner.plan") for line in lines)
        assert any(line.startswith("runner.shard") for line in lines)

    def test_profile_tree_empty(self):
        assert "no spans" in obs.profile_tree(obs.Trace())


# ---------------------------------------------------------------------- #
# Tracing never changes results
# ---------------------------------------------------------------------- #

class TestBitIdentityUnderTracing:
    @settings(max_examples=4, deadline=None)
    @given(
        name=st.sampled_from(sorted(GRAPH_LIBRARY)),
        length=st.sampled_from([96, 256, 321]),
    )
    def test_equivalence_matrix_holds_while_traced(self, name, length):
        assert_backends_equivalent(build_graph(name), length, traced=True)

    def test_traced_equals_untraced_bit_for_bit(self):
        plan = engine.compile(build_graph("mixed_pipeline"))
        base = plan.run_batch(512)
        with obs.observe():
            traced = plan.run_batch(512)
        assert base.names == traced.names
        for name in base.names:
            assert np.array_equal(base.words(name), traced.words(name))
