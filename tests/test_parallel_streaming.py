"""Parallel tile scheduler (repro.engine.parallel).

``jobs`` must be a pure *execution* parameter: worker count changes
wall-clock time and nothing else. These tests pin the three-phase
scheduler — span composition, prefix scan, seeded evaluation — to the
sequential paths it shadows: bit-identical streams and float-identical
audits at every tile size and worker count, byte-identical runner
stores, plus the composer algebra (associative, offset-correct span
maps) the state hand-off relies on.
"""

from unittest import mock

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import engine
from repro.core import (
    Decorrelator,
    Desynchronizer,
    IsolatorPair,
    SeriesPair,
    Synchronizer,
    TFMPair,
)
from repro.engine import parallel as parallel_mod
from repro.engine import run_streaming, audit_streaming
from repro.engine.executor import audit, run_batch
from repro.engine.library import GRAPH_LIBRARY, build_graph, long_stream_graph
from repro.engine.parallel import plan_waves, spans_for
from repro.exceptions import CircuitConfigurationError, GraphCompilationError
from repro.graph.graph import SCGraph
from repro.graph.nodes import TransformNode
from repro.kernels.streaming import make_pair_carrier, make_pair_composer
from repro.rng import LFSR
from tests.helpers import assert_backends_equivalent

compile_graph = engine.compile


def _state_equal(a, b) -> bool:
    """Recursive equality over carrier states / composer maps (tuples of
    arrays for the composite carriers)."""
    if isinstance(a, tuple) or isinstance(b, tuple):
        return (
            isinstance(a, tuple)
            and isinstance(b, tuple)
            and len(a) == len(b)
            and all(_state_equal(p, q) for p, q in zip(a, b))
        )
    return np.array_equal(np.asarray(a), np.asarray(b))


def _inline_scheduler():
    """Run the three-phase scheduler without forking: same code path,
    span tasks executed in-process (fast enough for hypothesis)."""
    return mock.patch.object(parallel_mod, "_fork_context", return_value=None)


# ---------------------------------------------------------------------- #
# 1. Static analysis: spans and waves
# ---------------------------------------------------------------------- #

class TestSchedulerUnits:
    def test_spans_cover_balance_and_align(self):
        spans = spans_for(100 * 64, tile_words=1, jobs=4)
        assert spans[0][0] == 0 and spans[-1][1] == 6400
        assert all(a0 % 64 == 0 for a0, _ in spans)  # word-aligned starts
        assert [b[0] for b in spans[1:]] == [a[1] for a in spans[:-1]]
        sizes = [(stop - start) // 64 for start, stop in spans]
        assert max(sizes) - min(sizes) <= 1  # balanced within one tile

    def test_spans_never_exceed_tile_count(self):
        # One tile -> one span, regardless of jobs.
        assert spans_for(100, tile_words=4096, jobs=8) == [(0, 100)]
        # 200 bits at tile_words=1 is 4 tiles: jobs=8 clamps to 4 spans.
        spans = spans_for(200, tile_words=1, jobs=8)
        assert len(spans) == 4
        assert spans[-1][1] == 200  # ragged tail stays inside the last span

    def test_spans_jobs_one_is_single_span(self):
        assert spans_for(5000, tile_words=2, jobs=1) == [(0, 5000)]

    def test_fsm_zoo_has_three_waves(self):
        # sync/desync/deco read sources (wave 0); iso reads sync+desync
        # outputs (wave 1); tfm reads deco+iso outputs (wave 2).
        wave_of, group_inputs = plan_waves(compile_graph(build_graph("fsm_zoo")))
        assert sorted(wave_of.values()) == [0, 0, 0, 1, 2]
        plan_names = {s.name for s in compile_graph(build_graph("fsm_zoo")).steps}
        for inputs in group_inputs.values():
            assert set(inputs) <= plan_names

    def test_long_stream_is_single_wave(self):
        wave_of, _ = plan_waves(compile_graph(long_stream_graph(12)))
        assert set(wave_of.values()) == {0}

    def test_combinational_plan_has_no_waves(self):
        wave_of, group_inputs = plan_waves(compile_graph(build_graph("depth8")))
        assert wave_of == {} and group_inputs == {}


# ---------------------------------------------------------------------- #
# 2. The cross-backend equivalence matrix
# ---------------------------------------------------------------------- #

class TestCrossBackendMatrix:
    @pytest.mark.parametrize("graph_name", sorted(GRAPH_LIBRARY))
    def test_four_route_equivalence(self, graph_name):
        # interpreter == engine == streaming == parallel streaming,
        # streams and audits, at a length that straddles word boundaries.
        assert_backends_equivalent(
            build_graph(graph_name), 333, tile_words=(1, 7), jobs=3, audit=True
        )


class TestParallelIdentity:
    @pytest.mark.parametrize("graph_name", sorted(GRAPH_LIBRARY))
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_words_match_sequential_everywhere(self, graph_name, jobs):
        plan = compile_graph(build_graph(graph_name))
        ref = run_batch(plan, 1000)
        for tile_words in (1, 16):
            result = run_streaming(plan, 1000, tile_words=tile_words, jobs=jobs)
            for name in plan.node_order:
                assert np.array_equal(result.words(name), ref.words(name)), (
                    graph_name, tile_words, jobs, name,
                )

    @pytest.mark.parametrize("jobs", [2, 5])
    def test_audit_float_identity_width_matched(self, jobs):
        plan = compile_graph(long_stream_graph(12))
        reference = audit(plan, 1 << 12)
        sequential = audit_streaming(plan, 1 << 12, tile_words=8)
        parallel = audit_streaming(plan, 1 << 12, tile_words=8, jobs=jobs)
        assert parallel.entries == sequential.entries  # every field
        assert parallel.values == sequential.values
        assert parallel.expected == sequential.expected
        for ref_entry, got in zip(reference.entries, parallel.entries):
            assert ref_entry.node == got.node
            assert ref_entry.measured_scc == got.measured_scc
            assert ref_entry.measured_value == got.measured_value
            assert ref_entry.violated == got.violated

    @pytest.mark.parametrize("encoding", ["unipolar", "bipolar"])
    def test_encodings_and_values(self, encoding):
        plan = compile_graph(build_graph("mixed_pipeline"))
        ref = run_batch(plan, 777, encoding=encoding)
        result = run_streaming(plan, 777, tile_words=3, jobs=2, encoding=encoding)
        for name in plan.node_order:
            assert np.array_equal(result.values(name), ref.values(name))

    def test_series_composition_falls_back_sequentially(self):
        # SeriesPair has no composer: jobs>1 must silently take the
        # sequential walk and still produce identical bits.
        g = SCGraph()
        g.source("a", 0.7, "vdc")
        g.source("b", 0.4, "halton3")
        shared: dict = {}
        series = SeriesPair([Synchronizer(depth=1), IsolatorPair(delay=2)])
        g.add(TransformNode("s_x", series, ("a", "b"), 0, shared))
        g.add(TransformNode("s_y", series, ("a", "b"), 1, shared))
        g.op("out", "sub", "s_x", "s_y")
        plan = compile_graph(g)
        ref = run_batch(plan, 1000)
        result = run_streaming(plan, 1000, tile_words=2, jobs=4)
        for name in plan.node_order:
            assert np.array_equal(result.words(name), ref.words(name)), name

    def test_jobs_validation(self):
        plan = compile_graph(build_graph("correlated_multiply"))
        for bad in (0, -1, 1.5, "two"):
            with pytest.raises(CircuitConfigurationError):
                run_streaming(plan, 64, jobs=bad)
        with pytest.raises(CircuitConfigurationError):
            audit_streaming(plan, 64, jobs=0)


# ---------------------------------------------------------------------- #
# 3. keep= / override regressions under the parallel merge
# ---------------------------------------------------------------------- #

class TestKeepAndOverrides:
    def test_keep_subset_assembles_across_spans(self):
        # Many spans, batched overrides, a keep subset: every kept node
        # must assemble in node_order with full-stream words regardless
        # of which span finishes first.
        plan = compile_graph(build_graph("depth8"))
        values = {"src0": np.linspace(0.0, 1.0, 5),
                  "src4": np.linspace(1.0, 0.0, 5)}
        ref = run_batch(plan, 3333, values=values)
        result = run_streaming(
            plan, 3333, tile_words=1, jobs=4, values=values, keep=("n8", "n4")
        )
        assert result.batch_size == 5
        assert result.names == ["n4", "n8"]  # node_order, not keep order
        for name in ("n4", "n8"):
            assert np.array_equal(result.words(name), ref.words(name))
            assert np.array_equal(result.values(name), ref.values(name))

    def test_level_overrides_match_value_overrides(self):
        plan = compile_graph(build_graph("uncorrelated_subtract"))
        by_level = run_streaming(
            plan, 256, tile_words=1, jobs=4, levels={"a": np.arange(0, 256, 16)}
        )
        by_value = run_streaming(
            plan, 256, tile_words=1, jobs=4,
            values={"a": np.arange(0, 256, 16) / 256.0},
        )
        assert np.array_equal(by_level.words("diff"), by_value.words("diff"))

    def test_keep_validates_names(self):
        plan = compile_graph(build_graph("correlated_multiply"))
        with pytest.raises(GraphCompilationError):
            run_streaming(plan, 6400, tile_words=1, jobs=4, keep=("nope",))

    def test_values_only_for_kept_nodes(self):
        plan = compile_graph(build_graph("depth8"))
        result = run_streaming(plan, 6400, tile_words=1, jobs=4, keep=("n8",))
        with pytest.raises(KeyError):
            result.values("n1")


# ---------------------------------------------------------------------- #
# 4. Properties: arbitrary splits and the composer algebra
# ---------------------------------------------------------------------- #

PAIR_FAMILIES = [
    ("synchronizer", lambda: Synchronizer(depth=1)),
    ("desynchronizer", lambda: Desynchronizer(depth=1)),
    ("decorrelator",
     lambda: Decorrelator(LFSR(8, seed=45), LFSR(8, seed=142), depth=4)),
    ("isolator", lambda: IsolatorPair(delay=3)),
    ("tfm", lambda: TFMPair(LFSR(8, seed=77))),
]


class TestSplitProperties:
    @given(
        length=st.integers(1, 1500),
        tile_words=st.integers(1, 5),
        jobs=st.integers(2, 6),
    )
    @settings(max_examples=15, deadline=None)
    def test_fsm_zoo_any_split_bit_identical(self, length, tile_words, jobs):
        # Every (tile size, span count) partition of a three-wave FSM
        # graph reproduces the sequential bits exactly.
        with _inline_scheduler():
            plan = compile_graph(build_graph("fsm_zoo"))
            ref = run_batch(plan, length)
            result = run_streaming(plan, length, tile_words=tile_words, jobs=jobs)
            for name in plan.node_order:
                assert np.array_equal(result.words(name), ref.words(name)), (
                    length, tile_words, jobs, name,
                )

    @pytest.mark.parametrize(
        "factory", [f for _, f in PAIR_FAMILIES],
        ids=[name for name, _ in PAIR_FAMILIES],
    )
    @given(
        lens=st.tuples(
            st.integers(1, 64), st.integers(1, 64), st.integers(1, 64)
        ),
        seed=st.integers(0, 2 ** 16),
    )
    @settings(max_examples=15, deadline=None)
    def test_span_maps_compose(self, factory, lens, seed):
        # The algebra the prefix scan rests on: span maps composed in
        # any association equal the one-shot map, and applying the
        # composed map to the fresh state lands on the carrier's state.
        total, batch = sum(lens), 2
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 2, size=(batch, total), dtype=np.uint8)
        y = rng.integers(0, 2, size=(batch, total), dtype=np.uint8)

        maps, offset = [], 0
        for chunk in lens:
            composer = make_pair_composer(factory(), total, batch, offset)
            composer.step(x[:, offset:offset + chunk],
                          y[:, offset:offset + chunk])
            maps.append(composer.state_map)
            offset += chunk

        algebra = make_pair_composer(factory(), total, batch)
        left = algebra.compose(algebra.compose(maps[0], maps[1]), maps[2])
        right = algebra.compose(maps[0], algebra.compose(maps[1], maps[2]))
        assert _state_equal(left, right)

        one_shot = make_pair_composer(factory(), total, batch)
        one_shot.step(x, y)
        assert _state_equal(left, one_shot.state_map)

        carrier = make_pair_carrier(factory(), total, batch)
        fresh = carrier.get_state()
        carrier.step(x, y)
        assert _state_equal(algebra.apply(left, fresh), carrier.get_state())


# ---------------------------------------------------------------------- #
# 5. Runner determinism: jobs is invisible to the store
# ---------------------------------------------------------------------- #

SMALL_LONG_STREAM = {"exponents": (10, 12), "tile_words": 512}


class TestRunnerDeterminism:
    @staticmethod
    def _files(root):
        return sorted(
            p.relative_to(root) for p in root.rglob("*") if p.is_file()
        )

    def test_store_byte_identical_across_jobs(self, tmp_path):
        from repro.runner import ResultStore, run_spec

        roots = {}
        for jobs in (1, 2):
            root = tmp_path / f"jobs{jobs}"
            run_spec(
                "long_stream", fidelity="smoke", seed=11,
                store=ResultStore(str(root)), log=None,
                overrides={**SMALL_LONG_STREAM, "jobs": jobs},
            )
            roots[jobs] = root
        files = self._files(roots[1])
        assert files and files == self._files(roots[2])
        for rel in files:
            assert (roots[1] / rel).read_bytes() == (roots[2] / rel).read_bytes(), rel

    def test_parallel_run_hits_sequential_cache(self, tmp_path):
        from repro.runner import ResultStore, run_spec

        store = ResultStore(str(tmp_path / "store"))
        first = run_spec(
            "long_stream", fidelity="smoke", seed=7, store=store, log=None,
            overrides={**SMALL_LONG_STREAM, "jobs": 1},
        )
        assert first.computed == first.shard_count
        second = run_spec(
            "long_stream", fidelity="smoke", seed=7, store=store, log=None,
            overrides={**SMALL_LONG_STREAM, "jobs": 4},
        )
        # jobs is stripped from the content address: the parallel run
        # resolves entirely from the sequential run's cache entries.
        assert second.all_from_cache

    def test_content_params_strips_execution_keys(self):
        from repro.runner.spec import EXECUTION_PARAMS, content_params

        assert "jobs" in EXECUTION_PARAMS
        assert content_params({"jobs": 8, "exponents": (10,)}) == {
            "exponents": (10,)
        }
