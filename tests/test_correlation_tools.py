"""Unit tests for shuffle buffer, decorrelator, isolator, TFM, composition."""

import numpy as np
import pytest

from repro.bitstream import Bitstream, scc_batch
from repro.core import (
    Decorrelator,
    Desynchronizer,
    Isolator,
    IsolatorPair,
    SeriesPair,
    SeriesStream,
    ShuffleBuffer,
    Synchronizer,
    TFMPair,
    TrackingForecastMemory,
)
from repro.exceptions import CircuitConfigurationError

from tests.helpers import make_pair_batch
from repro.rng import LFSR, SystemRNG, VanDerCorput


class TestShuffleBuffer:
    def test_bit_conservation_identity(self):
        # ones(out) = ones(in) + ones(init) - residual, for any input.
        rng = np.random.default_rng(0)
        buf = ShuffleBuffer(SystemRNG(8, seed=1), depth=4)
        bits = rng.integers(0, 2, (16, 64)).astype(np.uint8)
        out = buf._process_stream_bits(bits)
        residual = buf.residual_ones(bits)
        init_ones = 2  # half of depth 4
        assert np.array_equal(
            out.sum(axis=1), bits.sum(axis=1) + init_ones - residual
        )

    def test_value_bias_bounded_by_depth(self):
        buf = ShuffleBuffer(SystemRNG(8, seed=2), depth=4)
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, (32, 128)).astype(np.uint8)
        out = buf._process_stream_bits(bits)
        max_bias = np.abs(out.mean(axis=1) - bits.mean(axis=1)).max()
        assert max_bias <= 4 / 128

    def test_scrambles_order(self):
        buf = ShuffleBuffer(SystemRNG(8, seed=3), depth=8)
        burst = np.zeros((1, 64), dtype=np.uint8)
        burst[0, :8] = 1
        out = buf._process_stream_bits(burst)
        assert not np.array_equal(out, burst)

    def test_init_policies(self):
        zeros = ShuffleBuffer(SystemRNG(8, seed=4), depth=4, init="zeros")
        ones = ShuffleBuffer(SystemRNG(8, seed=4), depth=4, init="ones")
        stream = np.zeros((1, 32), dtype=np.uint8)
        assert zeros._process_stream_bits(stream).sum() == 0
        assert ones._process_stream_bits(stream).sum() <= 4

    def test_unknown_init_rejected(self):
        with pytest.raises(CircuitConfigurationError):
            ShuffleBuffer(SystemRNG(8), depth=4, init="random")

    def test_process_wrapper_kinds(self):
        buf = ShuffleBuffer(SystemRNG(8, seed=5), depth=2)
        out = buf.process(Bitstream("01101001"))
        assert isinstance(out, Bitstream)


class TestDecorrelator:
    def test_reduces_correlation(self):
        x, y, _, _ = make_pair_batch(VanDerCorput(8), VanDerCorput(8), step=16)
        before = scc_batch(x, y).mean()
        deco = Decorrelator(LFSR(8, seed=45), LFSR(8, seed=142), depth=4)
        out_x, out_y = deco._process_bits(x, y)
        after = scc_batch(out_x, out_y).mean()
        assert before > 0.85
        assert abs(after) < 0.4

    def test_values_approximately_preserved(self):
        x, y, _, _ = make_pair_batch(LFSR(8), LFSR(8), step=16)
        deco = Decorrelator(LFSR(8, seed=45), LFSR(8, seed=142), depth=4)
        out_x, out_y = deco._process_bits(x, y)
        assert abs((out_x.mean(axis=1) - x.mean(axis=1)).mean()) < 0.01

    def test_shared_rng_instance_rejected(self):
        rng = LFSR(8, seed=45)
        with pytest.raises(CircuitConfigurationError):
            Decorrelator(rng, rng, depth=4)

    def test_exposes_buffers(self):
        deco = Decorrelator(LFSR(8, seed=1), LFSR(8, seed=2), depth=8)
        assert deco.buffer_x.depth == 8
        assert deco.depth == 8


class TestIsolator:
    def test_single_delay(self):
        iso = Isolator(delay=1)
        out = iso.process(Bitstream("1100"))
        assert out.to01() == "0110"

    def test_multi_delay(self):
        iso = Isolator(delay=3, fill=1)
        assert iso.process(Bitstream("000000")).to01() == "111000"

    def test_pair_delays_y_only(self):
        pair = IsolatorPair(delay=1)
        x = np.array([[1, 0, 1, 0]], dtype=np.uint8)
        y = np.array([[1, 1, 0, 0]], dtype=np.uint8)
        out_x, out_y = pair._process_bits(x, y)
        assert np.array_equal(out_x, x)
        assert out_y.tolist() == [[0, 1, 1, 0]]

    def test_changes_correlation_of_identical_streams(self):
        x, y, _, _ = make_pair_batch(VanDerCorput(8), VanDerCorput(8), step=16)
        out_x, out_y = IsolatorPair(delay=1)._process_bits(x, y)
        assert scc_batch(out_x, out_y).mean() < scc_batch(x, y).mean()

    def test_cannot_reorder_bits(self):
        # The paper's point: isolators shift, never scramble. A burst stays
        # a burst.
        iso = Isolator(delay=2)
        burst = Bitstream("11110000")
        out = iso.process(burst)
        ones_positions = np.flatnonzero(out.bits)
        assert np.array_equal(ones_positions, np.arange(2, 6))


class TestTFM:
    def test_tracks_value_of_stationary_stream(self):
        tfm = TrackingForecastMemory(SystemRNG(8, seed=7), bits=8, shift=3)
        stream = (np.random.default_rng(0).random((8, 512)) < 0.7).astype(np.uint8)
        out = tfm._process_stream_bits(stream)
        assert abs(out.mean() - 0.7) < 0.05

    def test_constant_streams_converge(self):
        tfm = TrackingForecastMemory(SystemRNG(8, seed=8), bits=8, shift=3)
        ones = np.ones((1, 256), dtype=np.uint8)
        zeros = np.zeros((1, 256), dtype=np.uint8)
        assert tfm._process_stream_bits(ones)[:, 128:].mean() > 0.9
        assert tfm._process_stream_bits(zeros)[:, 128:].mean() < 0.1

    def test_shared_rng_pair_keeps_outputs_correlated(self):
        x, y, _, _ = make_pair_batch(VanDerCorput(8), VanDerCorput(8), step=16)
        pair = TFMPair(LFSR(8, seed=77))  # shared aux RNG
        out_x, out_y = pair._process_bits(x, y)
        assert scc_batch(out_x, out_y).mean() > 0.8

    def test_independent_rngs_decorrelate(self):
        x, y, _, _ = make_pair_batch(VanDerCorput(8), VanDerCorput(8), step=16)
        pair = TFMPair(LFSR(8, seed=77), LFSR(8, seed=142))
        out_x, out_y = pair._process_bits(x, y)
        assert scc_batch(out_x, out_y).mean() < 0.5

    def test_initial_validation(self):
        with pytest.raises(ValueError):
            TrackingForecastMemory(SystemRNG(8), initial=1.5)


class TestComposition:
    def test_series_pair_improves_scc(self):
        x, y, _, _ = make_pair_batch(LFSR(8), VanDerCorput(8), step=16)
        single = scc_batch(*Synchronizer(1)._process_bits(x, y)).mean()
        series = SeriesPair([Synchronizer(1), Synchronizer(1), Synchronizer(1)])
        tripled = scc_batch(*series._process_bits(x, y)).mean()
        assert tripled >= single - 0.005

    def test_series_pair_name_and_len(self):
        series = SeriesPair([Synchronizer(1), Desynchronizer(1)])
        assert len(series) == 2
        assert "synchronizer" in series.name and "desynchronizer" in series.name

    def test_series_requires_stages(self):
        with pytest.raises(CircuitConfigurationError):
            SeriesPair([])

    def test_series_type_checked(self):
        with pytest.raises(CircuitConfigurationError):
            SeriesPair([Synchronizer(1), "not a transform"])

    def test_series_stream(self):
        chain = SeriesStream(
            [ShuffleBuffer(SystemRNG(8, seed=1), 4), ShuffleBuffer(SystemRNG(8, seed=2), 4)]
        )
        out = chain.process(Bitstream("0101101001011010"))
        assert isinstance(out, Bitstream)
        assert len(chain) == 2

    def test_series_stream_requires_stream_transforms(self):
        with pytest.raises(CircuitConfigurationError):
            SeriesStream([Synchronizer(1)])
