"""Engine-vs-interpreter equivalence and plan/cache behaviour
(repro.engine).

The engine's contract is that it is a *faster schedule for the same
circuit*: bit-identical ``run`` streams, float-identical audits, across
odd stream lengths, both encodings, every FSM node type, and batched
configuration sweeps. These tests enforce that contract, plus the plan
cache semantics the autofix loop depends on.
"""

import numpy as np
import pytest

from repro import SCGraph, autofix, engine
from repro.bitstream.packed import unpack_bits
from repro.engine.library import GRAPH_LIBRARY, build_graph, depth_chain_graph
from repro.exceptions import GraphCompilationError
from repro.graph.nodes import Node, TransformNode
from tests.helpers import assert_backends_equivalent

LENGTHS = [7, 64, 100, 256, 333]


class TestRunEquivalence:
    @pytest.mark.parametrize("name", sorted(GRAPH_LIBRARY))
    @pytest.mark.parametrize("length", LENGTHS)
    def test_library_graphs_bit_identical(self, name, length):
        # interpreter == engine == streaming == parallel streaming.
        assert_backends_equivalent(build_graph(name), length)

    @pytest.mark.parametrize("length", [100, 256])
    def test_autofixed_graphs_bit_identical(self, length):
        # Autofix inserts every transform kind depending on the violation;
        # the fixed graphs must still round-trip through every backend.
        report = autofix(build_graph("correlated_multiply"), iterations=3)
        assert_backends_equivalent(report.fixed_graph, length)

    def test_default_backend_is_engine_and_matches(self):
        g = build_graph("mixed_pipeline")
        assert {
            k: v.tolist() for k, v in g.run(256).items()
        } == {k: v.tolist() for k, v in g.run(256, backend="interpreter").items()}

    def test_explicit_engine_backend(self):
        g = build_graph("uncorrelated_subtract")
        streams = g.run(128, backend="engine")
        assert streams["diff"].shape == (128,)

    def test_unknown_backend_rejected(self):
        from repro.exceptions import CircuitConfigurationError

        with pytest.raises(CircuitConfigurationError):
            build_graph("correlated_multiply").run(64, backend="frobnicate")


class TestAuditEquivalence:
    @pytest.mark.parametrize("name", sorted(GRAPH_LIBRARY))
    @pytest.mark.parametrize("length", [100, 256, 333])
    def test_audit_entries_identical(self, name, length):
        # Float-exact audits across all four execution routes.
        assert_backends_equivalent(build_graph(name), length, audit=True)

    def test_autofix_identical_across_backends(self):
        g1 = build_graph("mixed_pipeline")
        g2 = build_graph("mixed_pipeline")
        r_eng = autofix(g1, iterations=2)
        r_int = autofix(g2, iterations=2, backend="interpreter")
        assert r_eng.insertions == r_int.insertions
        assert r_eng.error_after == r_int.error_after


class TestRunBatch:
    def test_rows_bit_identical_to_per_config_interpretation(self):
        rng = np.random.default_rng(3)
        values = {f"src{i}": rng.random(6) for i in range(5)}
        plan = engine.compile(depth_chain_graph(4))
        result = plan.run_batch(256, values=values)
        assert result.batch_size == 6
        for row in range(6):
            g = depth_chain_graph(4, [values[f"src{i}"][row] for i in range(5)])
            interp = g.run(256, backend="interpreter")
            for name in interp:
                bits = result.bits(name)
                assert np.array_equal(bits[row % bits.shape[0]], interp[name])

    def test_fsm_graph_batched_odd_length(self):
        g = build_graph("fsm_zoo")
        plan = engine.compile(g)
        values = {"a": np.array([0.1, 0.7, 1.0]), "b": np.array([0.0, 0.4, 0.9])}
        result = plan.run_batch(133, values=values)
        for row in range(3):
            g2 = build_graph("fsm_zoo")
            # fsm_zoo rebuilds fresh transforms, but their bit behaviour is
            # parameter-deterministic, so per-config interpretation matches.
            g2._nodes["a"].value = float(values["a"][row])
            g2._nodes["b"].value = float(values["b"][row])
            interp = g2.run(133, backend="interpreter")
            for name in interp:
                bits = result.bits(name)
                assert np.array_equal(bits[row % bits.shape[0]], interp[name]), name

    def test_level_overrides_match_value_overrides(self):
        plan = engine.compile(build_graph("uncorrelated_subtract"))
        by_level = plan.run_batch(256, levels={"a": np.arange(0, 256, 16)})
        by_value = plan.run_batch(256, values={"a": np.arange(0, 256, 16) / 256.0})
        assert np.array_equal(by_level.words("diff"), by_value.words("diff"))

    def test_both_encodings(self):
        plan = engine.compile(build_graph("uncorrelated_subtract"))
        uni = plan.run_batch(100, encoding="unipolar")
        bi = plan.run_batch(100, encoding="bipolar")
        # Same bits, different value map: b = 2u - 1.
        assert np.array_equal(uni.words("diff"), bi.words("diff"))
        assert bi.values("diff") == pytest.approx(2 * uni.values("diff") - 1)

    def test_keep_releases_intermediates(self):
        plan = engine.compile(build_graph("mixed_pipeline"))
        result = plan.run_batch(256, keep=["avg"])
        assert result.names == ["avg"]
        full = plan.run_batch(256)
        assert np.array_equal(result.words("avg"), full.words("avg"))

    def test_override_validation(self):
        plan = engine.compile(build_graph("uncorrelated_subtract"))
        with pytest.raises(GraphCompilationError):
            plan.run_batch(64, values={"nope": 0.5})
        with pytest.raises(GraphCompilationError):
            plan.run_batch(64, values={"a": 1.5})
        with pytest.raises(GraphCompilationError):
            plan.run_batch(64, values={"a": np.array([0.1, 0.2]), "b": np.array([0.1, 0.2, 0.3])})
        with pytest.raises(GraphCompilationError):
            plan.run_batch(64, values={"a": 0.5}, levels={"a": 3})
        with pytest.raises(GraphCompilationError):
            plan.run_batch(64, levels={"a": np.array([0.5])})
        with pytest.raises(GraphCompilationError):
            plan.run_batch(64, keep=["ghost"])
        with pytest.raises(GraphCompilationError):
            plan.run_batch(64, values={"a": np.array([np.nan, 0.5])})
        with pytest.raises(GraphCompilationError):
            plan.run_batch(64, levels={"a": np.array([-5, 100])})
        with pytest.raises(GraphCompilationError):
            plan.run_batch(64, levels={"a": 65})

    def test_stream_batch_container(self):
        plan = engine.compile(build_graph("correlated_multiply"))
        packed = plan.run_batch(256).stream_batch("prod")
        assert packed.length == 256
        assert packed.values.shape == (1,)


class TestBatchAudit:
    def test_rows_match_scalar_audits(self):
        plan = engine.compile(depth_chain_graph(3))
        rng = np.random.default_rng(11)
        values = {f"src{i}": rng.random(4) for i in range(4)}
        batch = plan.audit_batch(256, values=values)
        assert batch.batch_size == 4
        for row in range(4):
            g = depth_chain_graph(3, [values[f"src{i}"][row] for i in range(4)])
            scalar = g.audit(256, backend="interpreter")
            for s_entry, b_entry in zip(scalar.entries, batch.entries):
                assert s_entry.node == b_entry.node
                assert s_entry.measured_scc == b_entry.measured_scc[row]
                assert s_entry.measured_value == b_entry.measured_value[row]
                assert s_entry.expected_value == pytest.approx(b_entry.expected_value[row])
                assert s_entry.violated == bool(b_entry.violated[row])

    def test_entry_lookup_and_rates(self):
        plan = engine.compile(build_graph("correlated_multiply"))
        batch = plan.audit_batch(256)
        entry = batch.entry("prod")
        assert entry.violation_rate == 1.0
        assert batch.mean_value_error("prod") > 0.05
        with pytest.raises(KeyError):
            batch.entry("ghost")


class TestPlanAndCache:
    def test_levelization(self):
        plan = engine.compile(build_graph("mixed_pipeline"))
        assert plan.levels[0] == ["a", "b", "c"]
        assert plan.step("diff").level == 1
        assert plan.step("peak").level == 2
        assert plan.step("avg").level == 3

    def test_domains_and_boundaries(self):
        plan = engine.compile(build_graph("fsm_zoo"))
        assert set(plan.sequential_nodes) == {
            "sync_x", "sync_y", "desync_x", "desync_y", "deco_x", "deco_y",
            "iso_x", "iso_y", "tfm_x", "tfm_y",
        }
        # Every zoo transform has a time-parallel kernel, so the whole
        # sequential set lands in the kernel domain and nothing is left
        # on the per-cycle reference loop.
        assert set(plan.kernel_nodes) == set(plan.sequential_nodes)
        assert plan.fsm_nodes == []
        # 5 transform groups, each unpacking 2 operands + repacking 2 ports.
        assert plan.boundary_count == 20
        assert "prod" in plan.packed_nodes

    def test_unkernelized_transform_stays_fsm_domain(self):
        # A PairTransform subclass the kernel layer has never heard of
        # must classify as fsm (reference loop), not silently inherit a
        # parent's tables.
        from repro.core import Synchronizer

        class Tweaked(Synchronizer):
            pass

        g = SCGraph()
        g.source("a", 0.5, "vdc")
        g.source("b", 0.5, "halton3")
        shared = {}
        g.add(TransformNode("t_x", Tweaked(1), ("a", "b"), 0, shared))
        g.add(TransformNode("t_y", Tweaked(1), ("a", "b"), 1, shared))
        plan = engine.compile(g)
        assert plan.fsm_nodes == ["t_x", "t_y"]
        assert plan.kernel_nodes == []

    def test_describe_mentions_domains(self):
        text = engine.compile(build_graph("fsm_zoo")).describe()
        assert "kernel:" in text and "packed" in text and "level 0" in text

    def test_cache_hit_for_equal_structure(self):
        engine.clear_cache()
        g = build_graph("correlated_multiply")
        p1 = engine.compile(g)
        p2 = engine.compile(build_graph("correlated_multiply"))  # equal by value
        assert p1 is p2
        info = engine.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_transform_identity_prevents_false_sharing(self):
        # Same node names/wiring but different transform instances must
        # compile to different plans (seeds differ -> bits differ).
        engine.clear_cache()
        p1 = engine.compile(build_graph("fsm_zoo"))
        p2 = engine.compile(build_graph("fsm_zoo"))
        assert p1 is not p2

    def test_autofix_loop_reuses_plans(self):
        engine.clear_cache()
        autofix(build_graph("correlated_multiply"), iterations=4)
        info = engine.cache_info()
        # audit -> splice -> re-audit: the re-audit and the final audit of
        # the fixed graph hit the cached plan instead of recompiling.
        assert info["hits"] >= 1
        assert info["misses"] <= 3

    def test_unsupported_node_falls_back_to_interpreter(self):
        class Constant(Node):
            def emit(self, input_bits, length):
                return np.zeros(length, dtype=np.uint8)

            def expected(self, input_values):
                return 0.0

        g = SCGraph()
        g.source("a", 0.5, "vdc")
        g.add(Constant("k", ("a",)))
        # auto silently falls back; explicit engine raises.
        assert g.run(64)["k"].sum() == 0
        with pytest.raises(GraphCompilationError):
            g.run(64, backend="engine")
        with pytest.raises(GraphCompilationError):
            engine.compile(g)

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphCompilationError):
            engine.compile(SCGraph())

    def test_list_rng_kwargs_compile_and_match_interpreter(self):
        # Unhashable kwarg values (taps lists) are frozen into the cache
        # key instead of crashing the default engine route.
        g = SCGraph()
        g.source("a", 0.5, "lfsr", taps=[8, 6, 5, 4])
        g.source("b", 0.5, "halton3")
        g.op("p", "mul", "a", "b")
        assert_backends_equivalent(g, 64)

    def test_batch_audit_arrays_are_writable(self):
        plan = engine.compile(build_graph("correlated_multiply"))
        batch = plan.audit_batch(256, values={"a": np.linspace(0, 1, 5)})
        batch.values["prod"] += 0.1  # must not raise (no read-only views)
        batch.entry("prod").measured_value.sort()

    def test_engine_audit_on_byte_lut_popcount_fallback(self, monkeypatch):
        # numpy < 2 has no np.bitwise_count; the engine's popcount-based
        # values/SCC must be identical on the byte-LUT fallback (CI runs
        # the whole suite on numpy 1.x — this is the local smoke check).
        from repro.bitstream import metrics

        g = build_graph("mixed_pipeline")
        with_intrinsic = g.audit(256, backend="engine")
        monkeypatch.setattr(metrics, "_HAS_BITWISE_COUNT", False)
        with_lut = g.audit(256, backend="engine")
        assert with_intrinsic.entries == with_lut.entries
        assert with_intrinsic.values == with_lut.values


class TestPipelineEngineBackend:
    @pytest.mark.parametrize("variant", ["none", "regeneration", "synchronizer"])
    def test_accelerator_backends_identical(self, variant):
        from repro.pipeline import AcceleratorConfig, SCAccelerator, standard_test_images

        image = standard_test_images(16)["gradient"]
        acc = SCAccelerator(AcceleratorConfig(variant=variant, stream_length=64))
        ref = acc.process(image, backend="interpreter")
        eng = acc.process(image)
        assert np.array_equal(ref.output, eng.output)
        assert ref.mean_abs_error == eng.mean_abs_error

    def test_accelerator_chunked_batches_identical(self, monkeypatch):
        # Force multiple engine chunks on a small image: per-chunk
        # batching must still match the per-tile reference exactly.
        from repro.pipeline import accelerator as accel_mod
        from repro.pipeline import AcceleratorConfig, SCAccelerator, standard_test_images

        monkeypatch.setattr(accel_mod, "_ENGINE_CHUNK_BYTES", 1)  # 1 tile per chunk
        image = standard_test_images(16)["checker"]
        acc = SCAccelerator(AcceleratorConfig(stream_length=64))
        ref = acc.process(image, backend="interpreter")
        eng = acc.process(image)
        assert np.array_equal(ref.output, eng.output)

    def test_mux_select_shared_between_backends(self):
        # The interpreter's scaled-add emit and the engine's packed mux
        # must draw their select bits from one helper.
        from repro.bitstream.packed import unpack_bits as _unpack
        from repro.engine.executor import _select_words
        from repro.graph.nodes import mux_select_bits

        assert np.array_equal(
            _unpack(_select_words(133), 133)[0], mux_select_bits(133)
        )

    def test_propagation_backends_agree_on_pure_gates(self):
        from repro.analysis.propagation_study import correlation_propagation

        eng = {e.gate: e for e in correlation_propagation(n=64, step=8)}
        ref = {e.gate: e for e in correlation_propagation(n=64, step=8, backend="interpreter")}
        # AND/OR/XOR are select-free: identical through either route. The
        # MUX row legitimately differs (engine uses the graph layer's
        # halton-7 select).
        for gate in ("AND (multiply)", "OR (sat add)", "XOR (subtract)"):
            assert eng[gate].scc_out_c == ref[gate].scc_out_c

    def test_sweep_graph_routes_through_engine(self):
        from repro.analysis.sweeps import sweep_graph

        result = sweep_graph(
            build_graph("correlated_multiply"),
            n=256,
            values={"a": np.linspace(0.0, 1.0, 9)},
        )
        assert result.configs == 9
        assert result.violation_rate["prod"] > 0.5
        assert result.worst_node() == "prod"
        # Expected semantics follow the overridden values.
        assert result.expected["prod"] == pytest.approx(np.linspace(0.0, 1.0, 9) * 0.5)
