"""Equivalence and determinism suite for :mod:`repro.kernels`.

The contract under test: for every circuit with a registered kernel, the
time-parallel execution is **bit-identical** to the circuit's per-cycle
reference loop — across depths, flush modes, encodings, odd/short
lengths, batch sizes, and every stepper strategy — and compilation is a
deterministic pure function of the circuit's constructor parameters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import kernels
from repro.arith.agnostic import CAAdder, CAMax
from repro.arith.divide import CorDiv
from repro.bitstream import Bitstream, BitstreamBatch
from repro.bitstream.encoding import Encoding
from repro.core import (
    Decorrelator,
    Desynchronizer,
    IsolatorPair,
    SeriesPair,
    ShuffleBuffer,
    Synchronizer,
    TFMPair,
    TrackingForecastMemory,
)
from repro.rng import LFSR

DEPTHS = (1, 2, 4, 8)
BATCHES = (1, 7, 256)
LENGTHS = (1, 3, 17, 64, 255, 256)


def _bits(rng, batch, length):
    return rng.integers(0, 2, (batch, length)).astype(np.uint8)


@pytest.fixture(autouse=True)
def _restore_dispatch():
    yield
    kernels.set_backend("auto")
    kernels.set_strategy("auto")


# ---------------------------------------------------------------------- #
# Pair transforms: full (depth, flush, length, batch, strategy) grid
# ---------------------------------------------------------------------- #

class TestPairEquivalence:
    @pytest.mark.parametrize("cls", [Synchronizer, Desynchronizer])
    @pytest.mark.parametrize("depth", DEPTHS)
    @pytest.mark.parametrize("flush", [False, True])
    def test_bit_identical_to_reference(self, cls, depth, flush):
        rng = np.random.default_rng(depth * 10 + flush)
        circuit = cls(depth, flush=flush)
        for batch in BATCHES:
            for length in LENGTHS:
                x = _bits(rng, batch, length)
                y = _bits(rng, batch, length)
                ref = circuit._reference_process_bits(x, y)
                for strategy in ("chunked", "scan", "step", "auto"):
                    kernels.set_strategy(strategy)
                    got = circuit._process_bits(x, y)
                    assert np.array_equal(ref[0], got[0]), (
                        f"{circuit.name} X differs: {strategy}, "
                        f"batch={batch}, length={length}"
                    )
                    assert np.array_equal(ref[1], got[1]), (
                        f"{circuit.name} Y differs: {strategy}, "
                        f"batch={batch}, length={length}"
                    )

    def test_biased_initial_state(self):
        rng = np.random.default_rng(5)
        x, y = _bits(rng, 16, 199), _bits(rng, 16, 199)
        for initial in (-2, -1, 0, 1, 2):
            sync = Synchronizer(2, flush=True, initial_state=initial)
            ref = sync._reference_process_bits(x, y)
            got = sync._process_bits(x, y)
            assert np.array_equal(ref[0], got[0]) and np.array_equal(ref[1], got[1])

    def test_desynchronizer_first_save(self):
        rng = np.random.default_rng(6)
        x, y = _bits(rng, 8, 130), _bits(rng, 8, 130)
        for first in ("x", "y"):
            desync = Desynchronizer(3, flush=True, first_save=first)
            ref = desync._reference_process_bits(x, y)
            got = desync._process_bits(x, y)
            assert np.array_equal(ref[0], got[0]) and np.array_equal(ref[1], got[1])

    @pytest.mark.parametrize("encoding", [Encoding.UNIPOLAR, Encoding.BIPOLAR])
    def test_both_encodings_via_process_pair(self, encoding):
        rng = np.random.default_rng(7)
        bits_x, bits_y = _bits(rng, 1, 256)[0], _bits(rng, 1, 256)[0]
        x = Bitstream(bits_x, encoding=encoding)
        y = Bitstream(bits_y, encoding=encoding)
        sync = Synchronizer(2, flush=True)
        kx, ky = sync.process_pair(x, y)
        kernels.set_backend("reference")
        rx, ry = sync.process_pair(x, y)
        assert np.array_equal(kx.bits, rx.bits)
        assert np.array_equal(ky.bits, ry.bits)
        assert kx.encoding is encoding and ky.encoding is encoding

    def test_stuck_bits_diagnostic_matches_reference(self):
        rng = np.random.default_rng(8)
        x, y = _bits(rng, 32, 255), _bits(rng, 32, 255)
        sync = Synchronizer(4)
        with_kernel = sync.stuck_bits(x, y)
        kernels.set_backend("reference")
        assert np.array_equal(with_kernel, sync.stuck_bits(x, y))


# ---------------------------------------------------------------------- #
# Stream transforms
# ---------------------------------------------------------------------- #

class TestStreamEquivalence:
    @pytest.mark.parametrize("depth", [1, 2, 4, 8])
    @pytest.mark.parametrize("init", ["half_ones", "zeros", "ones"])
    def test_shuffle_buffer(self, depth, init):
        rng = np.random.default_rng(depth)
        for batch, length in ((1, 1), (7, 63), (256, 256)):
            buf = ShuffleBuffer(LFSR(8, seed=45), depth, init=init)
            bits = _bits(rng, batch, length)
            assert np.array_equal(
                buf._reference_process_stream_bits(bits),
                buf._process_stream_bits(bits),
            )

    def test_shuffle_residual_ones_matches_reference(self):
        rng = np.random.default_rng(11)
        bits = _bits(rng, 16, 200)
        buf = ShuffleBuffer(LFSR(8, seed=45), 4)
        with_kernel = buf.residual_ones(bits)
        kernels.set_backend("reference")
        assert np.array_equal(with_kernel, buf.residual_ones(bits))

    def test_decorrelator(self):
        rng = np.random.default_rng(12)
        x, y = _bits(rng, 33, 257), _bits(rng, 33, 257)
        deco = Decorrelator(LFSR(8, seed=45), LFSR(8, seed=142), depth=4)
        kx, ky = deco._process_bits(x, y)
        kernels.set_backend("reference")
        rx, ry = deco._process_bits(x, y)
        assert np.array_equal(kx, rx) and np.array_equal(ky, ry)

    @pytest.mark.parametrize("bits_width", [4, 8])
    @pytest.mark.parametrize("shift", [1, 3])
    def test_tfm(self, bits_width, shift):
        rng = np.random.default_rng(13)
        tfm = TrackingForecastMemory(LFSR(8, seed=7), bits_width, shift=shift)
        for batch, length in ((1, 3), (7, 100), (64, 257)):
            stream = _bits(rng, batch, length)
            assert np.array_equal(
                tfm._reference_process_stream_bits(stream),
                tfm._process_stream_bits(stream),
            )

    def test_tfm_pair(self):
        rng = np.random.default_rng(14)
        x, y = _bits(rng, 9, 256), _bits(rng, 9, 256)
        pair = TFMPair(LFSR(8, seed=77))
        kx, ky = pair._process_bits(x, y)
        kernels.set_backend("reference")
        rx, ry = pair._process_bits(x, y)
        assert np.array_equal(kx, rx) and np.array_equal(ky, ry)


# ---------------------------------------------------------------------- #
# Single-output FSM operators
# ---------------------------------------------------------------------- #

class TestOpEquivalence:
    @pytest.mark.parametrize("op", [
        CorDiv(), CorDiv(initial=1), CAAdder(),
        CAMax(), CAMax(counter_bits=3), CAMax(counter_bits=10),
    ], ids=lambda op: f"{type(op).__name__}")
    def test_bit_identical(self, op):
        rng = np.random.default_rng(21)
        for batch in BATCHES:
            for length in (1, 17, 256):
                x = _bits(rng, batch, length)
                y = _bits(rng, batch, length)
                ref = op._reference_compute_bits(x, y)
                got = np.asarray(op.compute(BitstreamBatch(x), BitstreamBatch(y)).bits)
                assert np.array_equal(ref, got), (type(op).__name__, batch, length)

    def test_oversized_counter_declines_compilation(self):
        wide = CAMax(counter_bits=16)      # 65536 states > MAX_TABLE_STATES
        assert kernels.compiled_kernel(wide) is None
        rng = np.random.default_rng(22)
        x, y = _bits(rng, 4, 64), _bits(rng, 4, 64)
        # compute still works — through the reference loop.
        out = wide.compute(x, y)
        assert np.array_equal(out, wide._reference_compute_bits(x, y))


# ---------------------------------------------------------------------- #
# Compilation properties
# ---------------------------------------------------------------------- #

class TestCompilation:
    @pytest.mark.parametrize("make", [
        lambda: Synchronizer(3, flush=True, initial_state=-1),
        lambda: Desynchronizer(2, flush=True, first_save="y"),
        lambda: CorDiv(initial=1),
        lambda: CAAdder(),
        lambda: CAMax(counter_bits=4),
        lambda: TrackingForecastMemory(LFSR(8, seed=7), 6, shift=2),
    ])
    def test_compilation_is_deterministic(self, make):
        a = kernels.compile_transform(make())
        b = kernels.compile_transform(make())
        assert a.n_states == b.n_states
        assert a.n_symbols == b.n_symbols
        assert a.initial_state == b.initial_state
        assert np.array_equal(a.steady.next_state, b.steady.next_state)
        for out_a, out_b in ((a.steady.out_x, b.steady.out_x),
                             (a.steady.out_y, b.steady.out_y)):
            assert (out_a is None) == (out_b is None)
            if out_a is not None:
                assert np.array_equal(out_a, out_b)
        assert len(a.tails) == len(b.tails)
        for ta, tb in zip(a.tails, b.tails):
            assert np.array_equal(ta.next_state, tb.next_state)

    @given(
        depth=st.integers(1, 8),
        flush=st.booleans(),
        cls_index=st.integers(0, 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_compilation_deterministic_property(self, depth, flush, cls_index):
        # Property: compilation is a pure function of the constructor
        # parameters — two independent compiles of equal circuits yield
        # identical tables, tail count, and initial state.
        cls = (Synchronizer, Desynchronizer)[cls_index]
        a = kernels.compile_transform(cls(depth, flush=flush))
        b = kernels.compile_transform(cls(depth, flush=flush))
        assert a.initial_state == b.initial_state
        assert np.array_equal(a.steady.next_state, b.steady.next_state)
        assert np.array_equal(a.steady.out_x, b.steady.out_x)
        assert np.array_equal(a.steady.out_y, b.steady.out_y)
        assert len(a.tails) == len(b.tails) == (depth if flush else 0)
        for ta, tb in zip(a.tails, b.tails):
            assert np.array_equal(ta.next_state, tb.next_state)
            assert np.array_equal(ta.out_x, tb.out_x)
            assert np.array_equal(ta.out_y, tb.out_y)

    @given(
        pair=st.integers(4, 96).flatmap(
            lambda n: st.tuples(
                arrays(np.uint8, (3, n), elements=st.integers(0, 1)),
                arrays(np.uint8, (3, n), elements=st.integers(0, 1)),
            )
        ),
        depth=st.integers(1, 4),
        flush=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_kernel_equals_reference_property(self, pair, depth, flush):
        x, y = pair
        for cls in (Synchronizer, Desynchronizer):
            circuit = cls(depth, flush=flush)
            ref = circuit._reference_process_bits(x, y)
            got = circuit._process_bits(x, y)
            assert np.array_equal(ref[0], got[0])
            assert np.array_equal(ref[1], got[1])

    def test_state_space_sizes(self):
        assert kernels.compile_transform(Synchronizer(4)).n_states == 9
        assert kernels.compile_transform(Desynchronizer(4)).n_states == 10
        assert kernels.compile_transform(CorDiv()).n_states == 2
        assert kernels.compile_transform(CAAdder()).n_states == 2

    def test_flush_adds_tail_tables(self):
        assert len(kernels.compile_transform(Synchronizer(4)).tails) == 0
        assert len(kernels.compile_transform(Synchronizer(4, flush=True)).tails) == 4
        assert len(kernels.compile_transform(Desynchronizer(2, flush=True)).tails) == 2

    def test_kernel_cached_per_instance(self):
        sync = Synchronizer(2)
        assert kernels.compiled_kernel(sync) is kernels.compiled_kernel(sync)

    def test_subclass_is_not_kernelized(self):
        class Tweaked(Synchronizer):
            pass

        assert kernels.compiled_kernel(Tweaked(1)) is None
        assert not kernels.is_kernelized(Tweaked(1))

    def test_is_kernelized_composites(self):
        assert kernels.is_kernelized(Synchronizer(1))
        assert kernels.is_kernelized(Decorrelator(LFSR(8, seed=1), LFSR(8, seed=2)))
        assert kernels.is_kernelized(TFMPair(LFSR(8, seed=3)))
        assert kernels.is_kernelized(IsolatorPair(delay=2))
        assert kernels.is_kernelized(
            SeriesPair([Synchronizer(1), Synchronizer(1)])
        )

    def test_backend_and_strategy_validation(self):
        with pytest.raises(ValueError):
            kernels.set_backend("gpu")
        with pytest.raises(ValueError):
            kernels.set_strategy("warp")
        with kernels.use_backend("reference", strategy="step"):
            assert kernels.get_backend() == "reference"
            assert kernels.get_strategy() == "step"
        assert kernels.get_backend() == "auto"
        assert kernels.get_strategy() == "auto"


# ---------------------------------------------------------------------- #
# Steppers
# ---------------------------------------------------------------------- #

class TestSteppers:
    def test_trajectory_strategies_agree(self):
        rng = np.random.default_rng(31)
        fsm = kernels.compile_transform(Synchronizer(4))
        symbols = rng.integers(0, 4, (13, 301)).astype(np.uint8)
        baseline = kernels.state_trajectory(fsm, symbols, strategy="step")
        for strategy in ("chunked", "scan", "auto"):
            states, final = kernels.state_trajectory(fsm, symbols, strategy=strategy)
            assert np.array_equal(states, baseline[0]), strategy
            assert np.array_equal(final, baseline[1]), strategy

    def test_strategy_choice_scales_with_shape(self):
        # Big batch -> chunked; tiny batch + long stream -> scan.
        assert kernels.choose_strategy(1024, 1024, 9, 4) == "chunked"
        assert kernels.choose_strategy(1, 1 << 16, 9, 4) == "scan"

    def test_chunk_size_respects_table_cap(self):
        # 4 symbols, 9 states -> 4^k * 9 <= 2^20 caps k at 8.
        assert kernels.choose_chunk(4, 9) == 8
        # 2 symbols, 256 states (TFM) packs longer chunks.
        assert kernels.choose_chunk(2, 256) == 12

    def test_empty_batch(self):
        # Degenerate but reference-supported shape: zero rows.
        empty = np.zeros((0, 64), np.uint8)
        sync = Synchronizer(2)
        ref = sync._reference_process_bits(empty, empty)
        got = sync._process_bits(empty, empty)
        assert got[0].shape == ref[0].shape == (0, 64)
        for strategy in ("chunked", "scan", "step"):
            kernels.set_strategy(strategy)
            assert sync._process_bits(empty, empty)[0].shape == (0, 64)

    def test_trajectory_rejects_unknown_strategy(self):
        fsm = kernels.compile_transform(Synchronizer(1))
        with pytest.raises(ValueError):
            kernels.state_trajectory(fsm, np.zeros((1, 4), np.uint8), strategy="nope")


# ---------------------------------------------------------------------- #
# Engine integration
# ---------------------------------------------------------------------- #

class TestEngineIntegration:
    def test_audit_float_identical_across_backends(self):
        from repro import engine
        from repro.engine.library import build_graph

        plan = engine.compile(build_graph("fsm_zoo"))
        with_kernels = plan.audit(256)
        kernels.set_backend("reference")
        reference = plan.audit(256)
        assert with_kernels.values == reference.values
        for a, b in zip(with_kernels.entries, reference.entries):
            assert a.measured_scc == b.measured_scc
            assert a.measured_value == b.measured_value

    def test_run_batch_rows_bit_identical_across_backends(self):
        from repro import engine
        from repro.engine.library import build_graph

        plan = engine.compile(build_graph("fsm_zoo"))
        values = {"a": np.linspace(0.1, 0.9, 17)}
        with_kernels = plan.run_batch(255, values=values)
        kernels.set_backend("reference")
        reference = plan.run_batch(255, values=values)
        for name in with_kernels.names:
            assert np.array_equal(
                with_kernels.words(name), reference.words(name)
            ), name
