"""Integration tests: multi-module flows reproducing the paper's story."""

import numpy as np
import pytest

from repro import (
    AbsSubtractor,
    Bitstream,
    DigitalToStochastic,
    Multiplier,
    Regenerator,
    ScaledAdder,
    Synchronizer,
    SyncMax,
    scc,
)
from repro.analysis import generate_level_batch, pair_levels
from repro.bitstream import scc_batch
from repro.core import Decorrelator, Desynchronizer, SyncMax as CoreSyncMax, SyncMin
from repro.rng import LFSR, Halton, VanDerCorput


class TestEndToEndValueFlow:
    """BE value -> SN -> arithmetic -> SN -> BE value round trips."""

    def test_multiply_chain(self):
        d2s_a = DigitalToStochastic(VanDerCorput(8))
        d2s_b = DigitalToStochastic(Halton(3, 8))
        a = d2s_a.convert_value(0.5)
        b = d2s_b.convert_value(0.75)
        product = Multiplier().compute(a, b)
        assert abs(product.value - 0.375) < 0.02

    def test_three_operand_dataflow(self):
        # (a*b + c) / 2 with correlation managed at each step.
        a = DigitalToStochastic(VanDerCorput(8)).convert_value(0.6)
        b = DigitalToStochastic(Halton(3, 8)).convert_value(0.5)
        c = DigitalToStochastic(Halton(5, 8)).convert_value(0.4)
        ab = Multiplier().compute(a, b)  # 0.30, uncorrelated operands
        result = ScaledAdder(select_rng=Halton(7, 8)).compute(ab, c)
        assert abs(result.value - 0.35) < 0.04

    def test_subtract_needs_sync_after_multiply(self):
        # Products of shared-operand multiplies are partially correlated;
        # a synchronizer restores the XOR subtractor's accuracy.
        shared = DigitalToStochastic(VanDerCorput(8))
        a = shared.convert_value(0.9)
        b = DigitalToStochastic(Halton(3, 8)).convert_value(0.5)
        c = DigitalToStochastic(Halton(5, 8)).convert_value(0.25)
        ab = Multiplier().compute(a, b)   # 0.45
        ac = Multiplier().compute(a, c)   # 0.225
        plain = AbsSubtractor().compute(ab, ac).value
        sx, sy = Synchronizer(1).process_pair(ab, ac)
        synced = AbsSubtractor().compute(sx, sy).value
        assert abs(synced - 0.225) <= abs(plain - 0.225)
        assert abs(synced - 0.225) < 0.06


class TestManipulationVsRegeneration:
    """The paper's central trade: fix correlation in-stream vs re-encode."""

    def test_sync_matches_regeneration_for_xor(self):
        xs, ys = pair_levels(256, 16)
        x = generate_level_batch(xs, VanDerCorput(8), 256)
        y = generate_level_batch(ys, Halton(3, 8), 256)
        expected = np.abs(xs - ys) / 256

        # Regeneration through one shared RNG.
        regen = Regenerator(Halton(5, 8))
        counts_x = x.sum(axis=1)
        counts_y = y.sum(axis=1)
        seq = Halton(5, 8).sequence(256)
        rx = (counts_x[:, None] > seq).astype(np.uint8)
        ry = (counts_y[:, None] > seq).astype(np.uint8)
        regen_err = np.abs((rx ^ ry).mean(axis=1) - expected).mean()

        # In-stream synchronizer.
        sx, sy = Synchronizer(1)._process_bits(x, y)
        sync_err = np.abs((sx ^ sy).mean(axis=1) - expected).mean()

        plain_err = np.abs((x ^ y).mean(axis=1) - expected).mean()
        assert sync_err < plain_err / 4
        assert regen_err < plain_err / 4
        assert sync_err < 3 * regen_err + 0.01

    def test_decorrelator_recovers_multiply(self):
        # Two SNs from one RNG break AND-multiplication; the decorrelator
        # restores it without leaving the SC domain.
        xs, ys = pair_levels(256, 16)
        shared = VanDerCorput(8)
        x = generate_level_batch(xs, shared, 256)
        y = generate_level_batch(ys, VanDerCorput(8), 256)
        expected = (xs / 256) * (ys / 256)
        plain_err = np.abs((x & y).mean(axis=1) - expected).mean()
        deco = Decorrelator(LFSR(8, seed=45), LFSR(8, seed=142), depth=8)
        dx, dy = deco._process_bits(x, y)
        deco_err = np.abs((dx & dy).mean(axis=1) - expected).mean()
        assert deco_err < plain_err / 3

    def test_sync_then_desync_roundtrip_values(self):
        # Composing opposite manipulations must still conserve values.
        rng = np.random.default_rng(0)
        x = rng.integers(0, 2, (32, 128)).astype(np.uint8)
        y = rng.integers(0, 2, (32, 128)).astype(np.uint8)
        sx, sy = Synchronizer(1)._process_bits(x, y)
        dx, dy = Desynchronizer(1)._process_bits(sx, sy)
        assert np.abs(dx.mean(axis=1) - x.mean(axis=1)).max() < 0.05
        assert np.abs(dy.mean(axis=1) - y.mean(axis=1)).max() < 0.05


class TestMedianNetwork:
    """A 3-element SC median built from SyncMax/SyncMin (the classic
    exchange network), exercising composition of the improved operators."""

    @staticmethod
    def median3(a, b, c):
        hi_ab = SyncMax().compute(a, b)
        lo_ab = SyncMin().compute(a, b)
        mid = SyncMin().compute(hi_ab, c)
        return SyncMax().compute(lo_ab, mid)

    def test_median_of_three(self):
        cases = [(0.25, 0.5, 0.75), (0.9, 0.1, 0.5), (0.3, 0.3, 0.8)]
        for pa, pb, pc in cases:
            a = DigitalToStochastic(VanDerCorput(8)).convert_value(pa)
            b = DigitalToStochastic(Halton(3, 8)).convert_value(pb)
            c = DigitalToStochastic(Halton(5, 8)).convert_value(pc)
            med = self.median3(a, b, c)
            assert abs(med.value - sorted([pa, pb, pc])[1]) < 0.05
