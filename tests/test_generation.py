"""Unit tests for repro.bitstream.generation."""

import numpy as np
import pytest

from repro.bitstream import (
    bernoulli_stream,
    correlated_pair,
    exact_stream,
    rotations,
    scc,
)
from repro.exceptions import EncodingError


class TestExactStream:
    @pytest.mark.parametrize("value", [0.0, 0.25, 0.5, 0.75, 1.0])
    def test_exact_value(self, value):
        for style in ("even", "burst", "tail"):
            s = exact_stream(value, 64, style=style)
            assert s.value == value

    def test_even_spreads_ones(self):
        s = exact_stream(0.5, 8, style="even")
        # No two adjacent ones for p=0.5 even spreading.
        bits = s.bits
        assert not np.any(bits[:-1] & bits[1:])

    def test_burst_front_loads(self):
        s = exact_stream(0.25, 8, style="burst")
        assert s.to01() == "11000000"

    def test_tail_back_loads(self):
        s = exact_stream(0.25, 8, style="tail")
        assert s.to01() == "00000011"

    def test_bipolar(self):
        s = exact_stream(-0.5, 8, encoding="bipolar")
        assert s.value == -0.5

    def test_bad_style(self):
        with pytest.raises(ValueError):
            exact_stream(0.5, 8, style="diagonal")

    def test_out_of_range(self):
        with pytest.raises(EncodingError):
            exact_stream(1.5, 8)


class TestBernoulli:
    def test_reproducible(self):
        a = bernoulli_stream(0.5, 128, seed=3)
        b = bernoulli_stream(0.5, 128, seed=3)
        assert a == b

    def test_value_close(self):
        s = bernoulli_stream(0.3, 4096, seed=0)
        assert abs(s.value - 0.3) < 0.03

    def test_extremes(self):
        assert bernoulli_stream(0.0, 64, seed=0).value == 0.0
        assert bernoulli_stream(1.0, 64, seed=0).value == 1.0


class TestCorrelatedPair:
    @pytest.mark.parametrize("px,py", [(0.25, 0.75), (0.5, 0.5), (0.125, 0.875)])
    def test_positive_pair(self, px, py):
        x, y = correlated_pair(px, py, 64, scc=1)
        assert x.value == px and y.value == py
        assert scc(x.bits, y.bits) == 1.0

    @pytest.mark.parametrize("px,py", [(0.25, 0.5), (0.5, 0.5), (0.75, 0.75)])
    def test_negative_pair(self, px, py):
        x, y = correlated_pair(px, py, 64, scc=-1)
        assert x.value == px and y.value == py
        assert scc(x.bits, y.bits) == -1.0

    def test_negative_pair_with_forced_overlap(self):
        x, y = correlated_pair(0.75, 0.75, 64, scc=-1)
        assert scc(x.bits, y.bits) == -1.0

    def test_uncorrelated_pair_near_zero(self):
        values = []
        for seed in range(20):
            x, y = correlated_pair(0.5, 0.5, 256, scc=0, seed=seed)
            values.append(scc(x.bits, y.bits))
        assert abs(np.mean(values)) < 0.1

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            correlated_pair(0.5, 0.5, 16, scc=2)


class TestRotations:
    def test_count_and_values(self):
        base = exact_stream(0.5, 16)
        rots = rotations(base, 4)
        assert len(rots) == 4
        assert all(r.value == 0.5 for r in rots)

    def test_first_rotation_is_identity(self):
        base = exact_stream(0.375, 16)
        assert rotations(base, 4)[0] == base

    def test_rotations_decorrelate(self):
        base = bernoulli_stream(0.5, 256, seed=5)
        rots = rotations(base, 4)
        assert abs(scc(rots[0].bits, rots[1].bits)) < 0.3
