"""The serving front-end: protocol, coalescing identity, server e2e.

The load-bearing contract is **coalescing invisibility**: a request
served inside a micro-batch of any size returns a byte-identical
``result`` payload (canonical JSON) to the same request served solo —
whether the group ran materialised, load-shed into streaming, or came
back from the content-addressed store. Plus the two concurrency
satellites this PR hardens: the engine plan cache under thread hammer
and the result store under same-key multi-process write races.
"""

import json
import multiprocessing
import pathlib
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.library import build_graph, depth_chain_graph
from repro.engine.plan import cache_info, clear_cache, compile_graph
from repro.runner.store import ResultStore
from repro.serve import ServeClient, ServeConfig, ServerThread, execute_group
from repro.serve.batcher import merged_values, store_key
from repro.serve.loadgen import audit_request, run_load
from repro.serve.protocol import (
    ProtocolError,
    ServeRequest,
    b64_to_words,
    canonical_result,
    decode_line,
    encode_line,
    group_key,
    parse_request,
    request_to_wire,
    words_to_b64,
)

from tests.helpers import assert_backends_equivalent


def _plan(name):
    return compile_graph(build_graph(name))


def _req(i=0, **over):
    base = dict(id=f"r{i}", kind="audit", graph="depth8", length=512)
    base.update(over)
    return parse_request(base)


# ---------------------------------------------------------------------- #
# protocol
# ---------------------------------------------------------------------- #


class TestProtocol:
    def test_parse_round_trip(self):
        req = parse_request(
            {
                "id": "a", "kind": "run", "graph": "depth8", "length": 1024,
                "values": {"src1": 0.25, "src0": 0.5}, "keep": ["n8"],
                "bits": True, "encoding": "bipolar",
            }
        )
        assert req.values == (("src0", 0.5), ("src1", 0.25))  # canonical order
        again = parse_request(request_to_wire(req))
        assert again == req

    def test_line_codec_round_trip(self):
        obj = {"id": "x", "kind": "ping"}
        assert decode_line(encode_line(obj)) == obj

    @pytest.mark.parametrize(
        "bad",
        [
            {"kind": "run", "graph": "g", "id": ""},           # empty id
            {"kind": "teleport", "id": "a"},                   # unknown kind
            {"kind": "run", "id": "a"},                        # missing graph
            {"kind": "run", "id": "a", "graph": "g", "length": 0},
            {"kind": "run", "id": "a", "graph": "g", "length": True},
            {"kind": "run", "id": "a", "graph": "g", "values": {"s": "x"}},
            {"kind": "run", "id": "a", "graph": "g", "keep": "n8"},
            {"kind": "run", "id": "a", "graph": "g", "encoding": "ternary"},
            {"kind": "audit", "id": "a", "graph": "g", "tolerance": -1},
            {"kind": "spec", "id": "a"},                       # missing spec
            ["not", "an", "object"],
        ],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ProtocolError):
            parse_request(bad)

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ProtocolError):
            decode_line(b"{nope\n")

    def test_group_key_batches_values_not_shape(self):
        a = _req(0, values={"src0": 0.1})
        b = _req(1, values={"src0": 0.9, "src3": 0.4})
        assert group_key(a) == group_key(b)       # values are the batch axis
        assert group_key(a) != group_key(_req(2, length=1024))
        assert group_key(a) != group_key(_req(3, tolerance=0.5))
        run_a = _req(4, kind="run", values={"src0": 0.1})
        assert group_key(run_a) != group_key(a)   # kind splits groups
        bits = _req(5, kind="run", bits=True)
        plain = _req(6, kind="run")
        assert group_key(bits) == group_key(plain)  # bits is rendering only

    def test_words_b64_round_trip(self):
        words = np.arange(7, dtype="<u8") * 0x0123456789ABCDEF
        assert np.array_equal(b64_to_words(words_to_b64(words)), words)


# ---------------------------------------------------------------------- #
# group execution: value merge + byte identity
# ---------------------------------------------------------------------- #


class TestExecuteGroup:
    def test_merged_values_fills_graph_defaults(self):
        plan = _plan("depth8")
        reqs = [
            _req(0, values={"src0": 0.1}),
            _req(1),
            _req(2, values={"src2": 0.9}),
        ]
        merged = merged_values(reqs, plan)
        assert sorted(merged) == ["src0", "src2"]
        # row 1 overrode nothing: both merged sources carry its defaults
        assert merged["src0"].tolist() == [0.1, 0.5, 0.5]
        assert merged["src2"].tolist() == [0.5, 0.5, 0.9]

    def test_merged_values_none_without_overrides(self):
        assert merged_values([_req(0), _req(1)], _plan("depth8")) is None

    def test_solo_equals_coalesced_run(self):
        plan = _plan("correlated_multiply")
        reqs = [
            parse_request(
                {
                    "id": f"r{i}", "kind": "run",
                    "graph": "correlated_multiply", "length": 777,
                    "values": {"a": 0.2 + 0.2 * i}, "bits": True,
                }
            )
            for i in range(4)
        ]
        grouped = execute_group(reqs, plan)
        for req, got in zip(reqs, grouped):
            solo = execute_group([req], plan)[0]
            assert canonical_result(got["result"]) == canonical_result(
                solo["result"]
            )
            assert got["meta"]["coalesced"] == 4
            assert solo["meta"]["coalesced"] == 1

    def test_shed_routes_to_streaming_and_stays_identical(self):
        plan = _plan("correlated_multiply")
        reqs = [
            parse_request(
                {
                    "id": f"r{i}", "kind": "run",
                    "graph": "correlated_multiply", "length": 513,
                    "values": {"b": 0.125 * (i + 1)}, "bits": True,
                }
            )
            for i in range(3)
        ]
        normal = execute_group(reqs, plan)
        shed = execute_group(reqs, plan, budget_bytes=1)
        assert {r["meta"]["route"] for r in normal} == {"batched"}
        assert {r["meta"]["route"] for r in shed} == {"streamed"}
        for a, b in zip(normal, shed):
            assert canonical_result(a["result"]) == canonical_result(b["result"])

    def test_shed_audit_without_overrides_streams(self):
        plan = _plan("depth8")
        req = _req(0, length=4096)
        batched = execute_group([req], plan)[0]
        shed = execute_group([req], plan, budget_bytes=1)[0]
        assert shed["meta"]["route"] == "streamed"
        assert canonical_result(shed["result"]) == canonical_result(
            batched["result"]
        )

    def test_shed_audit_with_overrides_stays_batched(self):
        # The streaming auditor takes no per-source overrides — the one
        # documented load-shed gap: overridden audits always materialise.
        plan = _plan("depth8")
        req = _req(0, values={"src0": 0.3})
        shed = execute_group([req], plan, budget_bytes=1)[0]
        assert shed["meta"]["route"] == "batched"

    @settings(max_examples=25, deadline=None)
    @given(
        batch=st.lists(
            st.one_of(
                st.none(),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False,
                          width=32),
            ),
            min_size=1, max_size=7,
        ),
        probe_at=st.integers(min_value=0, max_value=6),
        length=st.sampled_from([63, 256, 511]),
    )
    def test_any_batch_size_is_byte_identical_to_solo(
        self, batch, probe_at, length
    ):
        """Property: a request returns the same bytes from *any* group.

        The probe request lands at an arbitrary position inside an
        arbitrary-size group of arbitrary-value neighbours; its rendered
        payload must equal its solo service exactly.
        """
        plan = _plan("uncorrelated_subtract")
        probe_at = min(probe_at, len(batch))
        probe = parse_request(
            {
                "id": "probe", "kind": "run",
                "graph": "uncorrelated_subtract", "length": length,
                "values": {"a": 0.375}, "bits": True,
            }
        )
        neighbours = [
            parse_request(
                {
                    "id": f"n{i}", "kind": "run",
                    "graph": "uncorrelated_subtract", "length": length,
                    **({"values": {"b": float(v)}} if v is not None else {}),
                }
            )
            for i, v in enumerate(batch)
        ]
        group = neighbours[:probe_at] + [probe] + neighbours[probe_at:]
        grouped = execute_group(group, plan)[probe_at]
        solo = execute_group([probe], plan)[0]
        assert canonical_result(grouped["result"]) == canonical_result(
            solo["result"]
        )

    def test_store_short_circuits_and_preserves_bytes(self, tmp_path):
        plan = _plan("depth8")
        store = ResultStore(tmp_path)
        reqs = [_req(i, values={"src0": 0.25 * (i + 1)}) for i in range(3)]
        first = execute_group(reqs, plan, store=store)
        assert all(not r["meta"]["cached"] for r in first)
        second = execute_group(reqs, plan, store=store)
        assert all(r["meta"]["cached"] for r in second)
        assert all(r["meta"]["route"] == "store" for r in second)
        for a, b in zip(first, second):
            assert canonical_result(a["result"]) == canonical_result(
                b["result"]
            )

    def test_intra_group_duplicates_share_one_key(self, tmp_path):
        plan = _plan("depth8")
        store = ResultStore(tmp_path)
        twin_a, twin_b = _req(0, values={"src0": 0.5}), _req(1, values={"src0": 0.5})
        assert store_key(store, twin_a) == store_key(store, twin_b)
        responses = execute_group([twin_a, twin_b], plan, store=store)
        assert canonical_result(responses[0]["result"]) == canonical_result(
            responses[1]["result"]
        )
        # both wrote the same key; the stored record is whole and valid
        cached = store.get(store_key(store, twin_a))
        assert cached == responses[0]["result"]


# ---------------------------------------------------------------------- #
# cross-backend equivalence: the serve axis
# ---------------------------------------------------------------------- #


class TestServeEquivalence:
    @pytest.mark.parametrize("name", ["correlated_multiply", "mixed_pipeline"])
    @pytest.mark.parametrize("length", [256, 257])
    def test_serve_axis_joins_the_matrix(self, name, length):
        assert_backends_equivalent(
            build_graph(name), length, audit=True, serve=True
        )

    def test_serve_axis_fsm_graph(self):
        assert_backends_equivalent(build_graph("fsm_zoo"), 256, serve=True)

    def test_serve_axis_deep_chain_odd_length(self):
        assert_backends_equivalent(depth_chain_graph(4), 333, serve=True)


# ---------------------------------------------------------------------- #
# satellite: plan cache under thread hammer
# ---------------------------------------------------------------------- #


class TestPlanCacheThreadSafety:
    def test_compile_graph_hammered_from_threads(self):
        """16 threads compiling the same graphs concurrently must agree
        on one cached plan per (signature, level) and keep the cache's
        hit/miss accounting consistent — the serving executor calls
        ``compile_graph`` from worker threads."""
        clear_cache()
        graphs = {name: build_graph(name) for name in
                  ("depth8", "correlated_multiply", "fsm_zoo")}
        results = {name: [] for name in graphs}
        errors = []

        def hammer():
            try:
                for _ in range(25):
                    for name, graph in graphs.items():
                        results[name].append(compile_graph(graph))
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for name, plans in results.items():
            assert len({id(p) for p in plans}) == 1, name  # one shared plan
        info = cache_info()
        assert info["hits"] + info["misses"] == 16 * 25 * len(graphs)

    def test_clear_cache_racing_compile(self):
        """clear_cache interleaved with compile_graph never corrupts the
        cache (worst case is extra misses)."""
        graph = build_graph("correlated_multiply")
        stop = threading.Event()
        errors = []

        def compiler():
            try:
                while not stop.is_set():
                    compile_graph(graph)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=compiler) for _ in range(4)]
        for t in threads:
            t.start()
        for _ in range(50):
            clear_cache()
        stop.set()
        for t in threads:
            t.join()
        assert not errors


# ---------------------------------------------------------------------- #
# satellite: store same-key write race across processes
# ---------------------------------------------------------------------- #


def _store_writer(root, key, tag, rounds):
    store = ResultStore(root)
    for i in range(rounds):
        store.put(key, {"tag": tag, "round": i})


class TestStoreWriteRace:
    def test_concurrent_same_key_writes_never_tear(self, tmp_path):
        """Two processes hammering one content key: every concurrent
        read parses as complete JSON and equals one writer's payload
        (last-writer-wins, never a torn/partial record)."""
        store = ResultStore(tmp_path)
        key = store.shard_key("race", "shard", "fn", {}, None)
        store.put(key, {"tag": "seed", "round": -1})
        ctx = multiprocessing.get_context("fork")
        rounds = 200
        workers = [
            ctx.Process(target=_store_writer,
                        args=(str(tmp_path), key, tag, rounds))
            for tag in ("a", "b")
        ]
        for w in workers:
            w.start()
        reads = 0
        while any(w.is_alive() for w in workers):
            payload = store.get(key)   # raises on a torn record
            assert payload["tag"] in ("seed", "a", "b")
            reads += 1
        for w in workers:
            w.join()
            assert w.exitcode == 0
        assert reads > 0
        assert store.get(key)["round"] == rounds - 1
        # no orphaned temp files survive the race
        leftovers = list(pathlib.Path(tmp_path).rglob("*.tmp"))
        assert leftovers == []


# ---------------------------------------------------------------------- #
# server end-to-end over TCP
# ---------------------------------------------------------------------- #


@pytest.fixture()
def server(tmp_path):
    config = ServeConfig(window_ms=5.0, max_batch=16,
                         store_root=str(tmp_path / "store"))
    with ServerThread(config) as srv:
        yield srv


class TestServer:
    def test_ping_stats_and_errors(self, server):
        with ServeClient(port=server.port) as client:
            assert client.ping() == "pong"
            response = client.request(
                {"kind": "audit", "graph": "not_a_graph", "length": 64}
            )
            assert response["ok"] is False
            assert "unknown graph" in response["error"]
            response = client.request(
                {"kind": "run", "graph": "depth8", "values": {"nope": 0.5}}
            )
            assert "unknown source" in response["error"]
            response = client.request({"kind": "nope"})
            assert "unknown kind" in response["error"]
            stats = client.stats()
            assert stats["counters"]["serve.errors"] == 3
            assert stats["queue_depth"] == 0

    def test_pipelined_requests_coalesce_and_match_solo(self, server):
        with ServeClient(port=server.port) as client:
            payloads = [
                {"kind": "audit", "graph": "depth8", "length": 1024,
                 "values": {"src0": 0.1 + 0.08 * i}}
                for i in range(8)
            ]
            grouped = client.request_many(payloads)
            assert all(r["ok"] for r in grouped)
            assert max(r["meta"]["coalesced"] for r in grouped) > 1
            # responses re-match by id in request order
            for payload, response in zip(payloads, grouped):
                solo = execute_group(
                    [parse_request({**payload, "id": "solo"})], _plan("depth8")
                )[0]
                assert canonical_result(response["result"]) == canonical_result(
                    solo["result"]
                )
            counters = client.stats()["counters"]
            assert counters["serve.coalesce.batched"] > 0

    def test_store_hits_short_circuit_across_connections(self, server):
        payload = {"kind": "run", "graph": "mixed_pipeline", "length": 512,
                   "values": {"a": 0.7}}
        with ServeClient(port=server.port) as first:
            miss = first.request(payload)
        with ServeClient(port=server.port) as second:
            hit = second.request(payload)
        assert miss["meta"]["cached"] is False
        assert hit["meta"]["cached"] is True
        assert canonical_result(miss["result"]) == canonical_result(
            hit["result"]
        )

    def test_spec_requests_run_through_shared_store(self, server):
        with ServeClient(port=server.port) as client:
            cold = client.spec("table1", fidelity="smoke")
            warm = client.spec("table1", fidelity="smoke")
        assert cold["computed"] == cold["shard_count"]
        assert warm["cache_hits"] == warm["shard_count"]

    def test_loadgen_under_concurrency(self, server):
        report = run_load(
            "127.0.0.1", server.port, concurrency=8, per_worker=3,
            make_request=lambda i: audit_request("depth8", 1024, i),
        )
        assert report.errors == 0
        assert report.requests == 24
        assert report.coalesced_max > 1

    def test_shutdown_request_stops_server(self, tmp_path):
        config = ServeConfig(window_ms=2.0)
        with ServerThread(config) as srv:
            with ServeClient(port=srv.port) as client:
                assert client.shutdown() == "stopping"
            srv._thread.join(timeout=10)
            assert not srv._thread.is_alive()


# ---------------------------------------------------------------------- #
# satellite: serve spools aggregate through `repro stats`
# ---------------------------------------------------------------------- #


class TestServeObservability:
    def test_spool_written_and_stats_aggregates(self, tmp_path, capsys):
        from repro.cli import main

        root = tmp_path / "store"
        config = ServeConfig(window_ms=2.0, store_root=str(root))
        with ServerThread(config) as srv:
            with ServeClient(port=srv.port) as client:
                client.request_many(
                    [
                        {"kind": "audit", "graph": "depth8", "length": 512,
                         "values": {"src0": 0.2 + 0.1 * i}}
                        for i in range(4)
                    ]
                )
            srv.stop()
        spools = list((root / "obs").glob("serve-*.jsonl"))
        assert spools, "server wrote no obs spool"
        assert main(["stats", "--store", str(root)]) == 0
        out = capsys.readouterr().out
        assert "serve.coalesce" in out
        assert "serve_coalesce_rate" in out

    def test_stats_merges_spools_with_stats_docs(self, tmp_path, capsys):
        """A traced runner doc and serve spools merge into one view."""
        from repro import obs
        from repro.cli import main

        root = tmp_path / "store"
        obs_dir = root / "obs"
        obs_dir.mkdir(parents=True)
        with obs.observe() as trace:
            with obs.span("runner.fake"):
                obs.counter_add("store.write", 3)
        (obs_dir / "stats-19700101-000000-1.json").write_text(
            json.dumps(obs.stats_doc(trace)) + "\n"
        )
        config = ServeConfig(window_ms=2.0, store_root=str(root))
        with ServerThread(config) as srv:
            with ServeClient(port=srv.port) as client:
                client.audit("depth8", 256)
            srv.stop()
        assert main(["stats", "--store", str(root)]) == 0
        out = capsys.readouterr().out
        assert "runner.fake" in out or "store.write" in out
        assert "serve.requests" in out

    def test_drain_spool_deltas_sum_to_totals(self, tmp_path):
        from repro import obs

        spool = tmp_path / "spool.jsonl"
        with obs.observe():
            obs.counter_add("serve.test.counter", 2)
            assert obs.drain_spool(spool) >= 0
            obs.counter_add("serve.test.counter", 5)
            obs.drain_spool(spool)
        trace = obs.read_spool_trace([spool])
        assert trace.metrics["counters"]["serve.test.counter"] == 7


# ---------------------------------------------------------------------- #
# satellite: shutdown drains both execution runtimes, idempotently
# ---------------------------------------------------------------------- #


class TestShutdownDrainsRuntimes:
    def test_double_close_is_idempotent(self, tmp_path):
        # A double-`shutdown` request (or a signal racing a client
        # shutdown) must find every handle already torn down and return
        # quietly — and the teardown must drain the engine thread pool
        # AND the persistent process pool.
        import asyncio

        from repro.engine import pool as pool_mod
        from repro.serve.server import SCServer

        config = ServeConfig(window_ms=2.0, store_root=str(tmp_path / "store"))

        async def _scenario():
            server = SCServer(config)
            await server.start()
            await server.close()
            assert server._server is None and server._pool is None
            await server.close()  # second close must not raise
            assert server._server is None and server._pool is None

        asyncio.run(_scenario())
        assert pool_mod._POOL is None  # persistent process pool drained

    def test_server_thread_stop_twice(self, tmp_path):
        config = ServeConfig(window_ms=2.0, store_root=str(tmp_path / "store"))
        with ServerThread(config) as srv:
            with ServeClient(port=srv.port) as client:
                assert client.ping() == "pong"
            srv.stop()
            srv.stop()  # second stop is a no-op
        assert not srv._thread.is_alive()
