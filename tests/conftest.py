"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.rng import LFSR, Halton, SystemRNG, VanDerCorput


@pytest.fixture(autouse=True)
def _isolated_result_store(tmp_path, monkeypatch):
    """Point the runner's default store at a throwaway directory so CLI
    tests never write a ``.repro-store`` into the working tree."""
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "repro-store"))


@pytest.fixture
def n() -> int:
    """Default stream length used across tests (shorter than the paper's
    256 where exactness doesn't depend on it, for speed)."""
    return 256


@pytest.fixture
def vdc_rng():
    return VanDerCorput(width=8)


@pytest.fixture
def halton_rng():
    return Halton(base=3, width=8)


@pytest.fixture
def lfsr_rng():
    return LFSR(width=8)


@pytest.fixture
def sys_rng():
    return SystemRNG(width=8, seed=1234)


@pytest.fixture
def rng_pair(vdc_rng, halton_rng):
    """An uncorrelated RNG pair (the paper's Table III configuration)."""
    return vdc_rng, halton_rng


def make_pair_batch(rng_x, rng_y, n=256, step=16):
    """Small exhaustive pair batch helper usable without importing
    repro.analysis in low-level tests."""
    levels = np.arange(0, n, step, dtype=np.int64)
    xs = np.repeat(levels, levels.size)
    ys = np.tile(levels, levels.size)
    sx = rng_x.sequence(n)
    sy = rng_y.sequence(n)
    x = (xs[:, None] > sx[None, :]).astype(np.uint8)
    y = (ys[:, None] > sy[None, :]).astype(np.uint8)
    return x, y, xs, ys


@pytest.fixture
def pair_batch(rng_pair):
    rng_x, rng_y = rng_pair
    return make_pair_batch(rng_x, rng_y)
