"""Unit tests for the dataflow graph layer (repro.graph)."""

import numpy as np
import pytest

from repro.core import Synchronizer
from repro.exceptions import CircuitConfigurationError
from repro.graph import (
    OP_LIBRARY,
    AutofixReport,
    OpNode,
    SCGraph,
    SourceNode,
    TransformNode,
    autofix,
)


def correlated_multiply_graph():
    """Two sources on one RNG (SCC=+1) feeding a multiply (needs SCC=0)."""
    g = SCGraph()
    g.source("a", 0.75, "vdc")
    g.source("b", 0.5, "vdc")
    g.op("prod", "mul", "a", "b")
    return g


def uncorrelated_subtract_graph():
    """Two independent sources feeding a subtract (needs SCC=+1)."""
    g = SCGraph()
    g.source("a", 0.8, "vdc")
    g.source("b", 0.3, "halton3")
    g.op("diff", "sub", "a", "b")
    return g


class TestGraphConstruction:
    def test_nodes_registered_in_order(self):
        g = correlated_multiply_graph()
        assert g.node_names == ["a", "b", "prod"]
        assert len(g) == 3
        assert "prod" in g

    def test_duplicate_name_rejected(self):
        g = SCGraph()
        g.source("a", 0.5)
        with pytest.raises(CircuitConfigurationError):
            g.source("a", 0.6)

    def test_unknown_input_rejected(self):
        g = SCGraph()
        with pytest.raises(CircuitConfigurationError):
            g.op("z", "mul", "missing", "also_missing")

    def test_unknown_op_rejected(self):
        g = SCGraph()
        g.source("a", 0.5)
        g.source("b", 0.5)
        with pytest.raises(CircuitConfigurationError):
            g.op("z", "frobnicate", "a", "b")

    def test_source_value_range(self):
        g = SCGraph()
        with pytest.raises(CircuitConfigurationError):
            g.source("bad", 1.5)

    def test_op_arity(self):
        with pytest.raises(CircuitConfigurationError):
            OpNode("z", "mul", ("a",))

    def test_op_library_entries_complete(self):
        for name, entry in OP_LIBRARY.items():
            assert "emit" in entry and "expected" in entry and "required" in entry


class TestGraphEvaluation:
    def test_run_shapes(self):
        streams = correlated_multiply_graph().run(128)
        assert set(streams) == {"a", "b", "prod"}
        assert all(s.shape == (128,) for s in streams.values())

    def test_source_values_exact_with_vdc(self):
        streams = correlated_multiply_graph().run(256)
        assert streams["a"].mean() == 0.75
        assert streams["b"].mean() == 0.5

    def test_expected_values_propagate(self):
        g = SCGraph()
        g.source("a", 0.6)
        g.source("b", 0.4, "halton3")
        g.op("s", "scaled_add", "a", "b")
        g.op("m", "min", "s", "a")
        expected = g.expected_values()
        assert expected["s"] == pytest.approx(0.5)
        assert expected["m"] == pytest.approx(0.5)

    def test_correlated_multiply_is_wrong(self):
        # Shared-RNG sources: AND computes min, not the product.
        streams = correlated_multiply_graph().run(256)
        assert streams["prod"].mean() == pytest.approx(0.5, abs=0.02)  # min!

    def test_scaled_add_runs_with_internal_select(self):
        g = SCGraph()
        g.source("a", 1.0)
        g.source("b", 0.0, "halton3")
        g.op("s", "scaled_add", "a", "b")
        assert g.run(256)["s"].mean() == pytest.approx(0.5, abs=0.05)


class TestAudit:
    def test_detects_correlated_multiply(self):
        audit = correlated_multiply_graph().audit(256)
        assert len(audit.violations) == 1
        entry = audit.violations[0]
        assert entry.node == "prod"
        assert entry.measured_scc > 0.9
        assert entry.required_scc == 0.0

    def test_detects_uncorrelated_subtract(self):
        audit = uncorrelated_subtract_graph().audit(256)
        assert [e.node for e in audit.violations] == ["diff"]

    def test_no_false_positive(self):
        g = SCGraph()
        g.source("a", 0.75, "vdc")
        g.source("b", 0.5, "halton3")
        g.op("prod", "mul", "a", "b")
        assert g.audit(256).violations == []

    def test_value_error_attribution(self):
        audit = correlated_multiply_graph().audit(256)
        entry = audit.entries[0]
        # min(0.75,0.5)=0.5 vs product 0.375: error ~0.125 at the op.
        assert entry.value_error == pytest.approx(0.125, abs=0.03)

    def test_total_output_error(self):
        audit = correlated_multiply_graph().audit(256)
        assert audit.total_output_error(["prod"]) == pytest.approx(0.125, abs=0.03)

    def test_agnostic_ops_never_violate(self):
        g = SCGraph()
        g.source("a", 0.9, "vdc")
        g.source("b", 0.9, "vdc")
        g.op("s", "scaled_add", "a", "b")
        assert g.audit(256).violations == []


class TestAutofix:
    def test_fixes_correlated_multiply_with_decorrelator(self):
        result = autofix(correlated_multiply_graph())
        assert result.insertion_count == 1
        assert "decorrelator" in result.insertions[0]
        assert result.error_after["prod"] < result.error_before["prod"] / 2

    def test_fixes_uncorrelated_subtract_with_synchronizer(self):
        result = autofix(uncorrelated_subtract_graph())
        assert "synchronizer" in result.insertions[0]
        assert result.error_after["diff"] < 0.02
        assert result.error_before["diff"] > 0.05

    def test_fixes_sat_add_with_desynchronizer(self):
        g = SCGraph()
        g.source("a", 0.4, "vdc")
        g.source("b", 0.4, "vdc")  # correlated; OR would compute max
        g.op("sum", "sat_add", "a", "b")
        result = autofix(g)
        assert "desynchronizer" in result.insertions[0]
        assert result.error_after["sum"] < 0.03

    def test_reports_hardware_cost(self):
        result = autofix(uncorrelated_subtract_graph())
        assert result.added_area_um2 > 40  # one synchronizer
        assert result.added_power_uw > 4

    def test_clean_graph_untouched(self):
        g = SCGraph()
        g.source("a", 0.75, "vdc")
        g.source("b", 0.5, "halton3")
        g.op("prod", "mul", "a", "b")
        result = autofix(g)
        assert result.insertion_count == 0
        assert result.added_area_um2 == 0.0

    def test_original_graph_not_modified(self):
        g = correlated_multiply_graph()
        names_before = g.node_names
        autofix(g)
        assert g.node_names == names_before

    def test_iterative_composition_clears_residuals(self):
        # A single decorrelator leaves residual correlation near the
        # tolerance; iterating composes stages until the audit is clean.
        g = correlated_multiply_graph()
        result = autofix(g, iterations=4)
        assert result.fixed_graph.audit(256).violations == []
        assert result.mean_error_after() < 0.02

    def test_iterations_stop_when_clean(self):
        g = SCGraph()
        g.source("a", 0.75, "vdc")
        g.source("b", 0.5, "halton3")
        g.op("prod", "mul", "a", "b")
        result = autofix(g, iterations=5)
        assert result.insertion_count == 0

    def test_multi_op_chain(self):
        # max(|a-b|, c) where a,b are uncorrelated (sub violated) and the
        # max inputs end up weakly correlated (max violated too).
        g = SCGraph()
        g.source("a", 0.9, "vdc")
        g.source("b", 0.2, "halton3")
        g.source("c", 0.5, "halton5")
        g.op("diff", "sub", "a", "b")
        g.op("peak", "max", "diff", "c")
        result = autofix(g)
        assert result.insertion_count >= 1
        assert result.mean_error_after() < result.mean_error_before()
        # Final output correct: max(|0.9-0.2|, 0.5) = 0.7
        fixed_values = result.fixed_graph.run(256)
        assert fixed_values["peak"].mean() == pytest.approx(0.7, abs=0.05)


class TestTransformNode:
    def test_ports_share_one_transform_pass(self):
        g = SCGraph()
        g.source("a", 0.5, "vdc")
        g.source("b", 0.7, "halton3")
        shared = {}
        sync = Synchronizer(1)
        g.add(TransformNode("fx", sync, ("a", "b"), 0, shared))
        g.add(TransformNode("fy", sync, ("a", "b"), 1, shared))
        streams = g.run(256)
        from repro.bitstream import scc
        assert scc(streams["fx"], streams["fy"]) > 0.9

    def test_port_validation(self):
        with pytest.raises(CircuitConfigurationError):
            TransformNode("t", Synchronizer(1), ("a", "b"), 2)

    def test_expected_passthrough(self):
        node = TransformNode("t", Synchronizer(1), ("a", "b"), 1)
        assert node.expected([0.3, 0.8]) == 0.8
