"""Unit tests for the RNG zoo (repro.rng)."""

import numpy as np
import pytest

from repro.exceptions import RNGConfigurationError
from repro.rng import (
    LFSR,
    MAXIMAL_TAPS,
    CounterRNG,
    Halton,
    Sobol,
    SystemRNG,
    VanDerCorput,
    available_rngs,
    make_rng,
    radical_inverse,
)


class TestLFSR:
    def test_full_period_covers_all_nonzero_states(self):
        for width in (3, 4, 5, 8):
            lfsr = LFSR(width=width)
            seq = lfsr.sequence((1 << width) - 1)
            # Mapped to state-1: every residue 0..2^w-2 exactly once.
            assert sorted(seq.tolist()) == list(range((1 << width) - 1))

    def test_period_property(self):
        assert LFSR(width=8).period == 255

    def test_deterministic_replay(self):
        a = LFSR(width=8, seed=17).sequence(100)
        b = LFSR(width=8, seed=17).sequence(100)
        assert np.array_equal(a, b)

    def test_different_seeds_are_rotations(self):
        base = LFSR(width=4, seed=1).sequence(15)
        other = LFSR(width=4, seed=7).sequence(15)
        assert sorted(base.tolist()) == sorted(other.tolist())
        assert not np.array_equal(base, other)

    def test_phase_skips_outputs(self):
        base = LFSR(width=8).sequence(20)
        shifted = LFSR(width=8, phase=5).sequence(15)
        assert np.array_equal(base[5:], shifted)

    def test_zero_seed_rejected(self):
        with pytest.raises(RNGConfigurationError):
            LFSR(width=8, seed=0)

    def test_seed_too_large_rejected(self):
        with pytest.raises(RNGConfigurationError):
            LFSR(width=4, seed=16)

    def test_unknown_width_needs_taps(self):
        with pytest.raises(RNGConfigurationError):
            LFSR(width=99)

    def test_custom_taps(self):
        lfsr = LFSR(width=3, taps=(3, 2))
        assert lfsr.sequence(7).size == 7

    def test_taps_must_include_width(self):
        with pytest.raises(RNGConfigurationError):
            LFSR(width=4, taps=(3, 2))

    def test_taps_table_covers_common_widths(self):
        for width in range(2, 25):
            assert width in MAXIMAL_TAPS


class TestVanDerCorput:
    def test_first_values_width3(self):
        # Bit-reversal of 0,1,2,3,... in 3 bits: 0,4,2,6,1,5,3,7.
        seq = VanDerCorput(width=3).sequence(8)
        assert seq.tolist() == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_full_period_is_permutation(self):
        seq = VanDerCorput(width=8).sequence(256)
        assert sorted(seq.tolist()) == list(range(256))

    def test_period_wraps(self):
        v = VanDerCorput(width=3)
        seq = v.sequence(16)
        assert np.array_equal(seq[:8], seq[8:])

    def test_phase(self):
        base = VanDerCorput(width=4).sequence(16)
        shifted = VanDerCorput(width=4, phase=3).sequence(13)
        assert np.array_equal(base[3:], shifted)

    def test_low_discrepancy_prefix(self):
        # Every prefix of length 2^k hits each residue class mod 2^k once.
        seq = VanDerCorput(width=8).sequence(16)
        assert sorted((seq >> 4).tolist()) == list(range(16))


class TestHalton:
    def test_radical_inverse_base2(self):
        out = radical_inverse(np.array([1, 2, 3, 4]), 2)
        assert np.allclose(out, [0.5, 0.25, 0.75, 0.125])

    def test_radical_inverse_base3(self):
        out = radical_inverse(np.array([1, 2, 3]), 3)
        assert np.allclose(out, [1 / 3, 2 / 3, 1 / 9])

    def test_values_in_range(self):
        seq = Halton(base=3, width=8).sequence(500)
        assert seq.min() >= 0 and seq.max() <= 255

    def test_base_must_be_at_least_two(self):
        with pytest.raises(RNGConfigurationError):
            Halton(base=1)

    def test_distinct_bases_decorrelated(self):
        a = Halton(base=3, width=8).fractions(512)
        b = Halton(base=5, width=8).fractions(512)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.1

    def test_approximate_uniformity(self):
        seq = Halton(base=3, width=8).sequence(3**5)
        hist, _ = np.histogram(seq, bins=4, range=(0, 256))
        assert hist.max() - hist.min() <= 4


class TestSobol:
    def test_dimension_zero_is_vdc_family(self):
        # Gray-code Sobol dimension 0 visits the same values as the Van der
        # Corput sequence (it is the VDC net in Gray-code order), and every
        # power-of-two prefix is balanced across halves like VDC.
        sobol = Sobol(dimension=0, width=8).sequence(256)
        vdc = VanDerCorput(width=8).sequence(256)
        assert sorted(sobol.tolist()) == sorted(vdc.tolist())
        assert sorted((sobol[:16] >> 4).tolist()) == list(range(16))

    def test_full_period_is_permutation(self):
        for dim in (1, 2, 3):
            seq = Sobol(dimension=dim, width=6).sequence(64)
            assert sorted(seq.tolist()) == list(range(64))

    def test_dimensions_decorrelated(self):
        a = Sobol(dimension=1, width=8).fractions(256)
        b = Sobol(dimension=2, width=8).fractions(256)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.15

    def test_dimension_out_of_range(self):
        with pytest.raises(RNGConfigurationError):
            Sobol(dimension=99)

    def test_phase(self):
        base = Sobol(dimension=1, width=6).sequence(20)
        shifted = Sobol(dimension=1, width=6, phase=4).sequence(16)
        assert np.array_equal(base[4:], shifted)


class TestCounter:
    def test_ramp(self):
        assert CounterRNG(width=3).sequence(10).tolist() == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1]

    def test_offset(self):
        assert CounterRNG(width=3, offset=6).sequence(4).tolist() == [6, 7, 0, 1]


class TestSystemRNG:
    def test_reproducible(self):
        assert np.array_equal(
            SystemRNG(width=8, seed=9).sequence(64), SystemRNG(width=8, seed=9).sequence(64)
        )

    def test_range(self):
        seq = SystemRNG(width=4, seed=0).sequence(1000)
        assert seq.min() >= 0 and seq.max() < 16


class TestStreamRNGBase:
    def test_fractions_in_unit_interval(self):
        f = VanDerCorput(width=8).fractions(256)
        assert f.min() >= 0.0 and f.max() < 1.0

    def test_integers_rescale(self):
        ints = VanDerCorput(width=8).integers(256, 4)
        assert set(ints.tolist()) == {0, 1, 2, 3}
        # Balanced: the VDC is exactly uniform over a full period.
        assert np.bincount(ints).tolist() == [64, 64, 64, 64]

    def test_next_value_streaming_matches_sequence(self):
        rng = Halton(base=3, width=8)
        streamed = [rng.next_value() for _ in range(300)]
        assert streamed == rng.sequence(300).tolist()

    def test_reset(self):
        rng = LFSR(width=8)
        first = [rng.next_value() for _ in range(5)]
        rng.reset()
        again = [rng.next_value() for _ in range(5)]
        assert first == again


class TestFactory:
    def test_known_specs(self):
        for spec in ("lfsr", "vdc", "halton3", "halton5", "sobol1", "counter", "system"):
            rng = make_rng(spec)
            assert rng.sequence(16).size == 16

    def test_unknown_spec(self):
        with pytest.raises(RNGConfigurationError):
            make_rng("quantum")

    def test_available_list(self):
        names = available_rngs()
        assert "lfsr" in names and "vdc" in names

    def test_kwargs_forwarded(self):
        rng = make_rng("lfsr", seed=33)
        assert "seed=33" in rng.name


class TestDefaultSeed:
    """The ambient seed the runner installs around shard execution."""

    def test_no_ambient_seed_keeps_builder_defaults(self):
        from repro.rng import get_default_seed

        assert get_default_seed() is None
        assert "seed=1" in make_rng("lfsr").name

    def test_ambient_seed_reaches_seedable_specs(self):
        from repro.rng import default_seed, get_default_seed

        with default_seed(42):
            assert get_default_seed() == 42
            assert "seed=43" in make_rng("lfsr").name  # folded: 1 + 42 % 255
        assert get_default_seed() is None

    def test_out_of_range_seed_folds_into_lfsr_domain(self):
        from repro.rng import default_seed

        with default_seed(0):
            assert "seed=1" in make_rng("lfsr").name
        with default_seed(255):  # 255 % 255 == 0 -> folded to 1
            assert "seed=1" in make_rng("lfsr").name
        with default_seed(10**9):
            make_rng("lfsr").sequence(8)  # any int is a valid ambient seed

    def test_explicit_seed_wins_over_ambient(self):
        from repro.rng import default_seed

        with default_seed(42):
            assert "seed=33" in make_rng("lfsr", seed=33).name

    def test_seedless_specs_unaffected(self):
        from repro.rng import default_seed

        base = make_rng("vdc").sequence(32)
        with default_seed(42):
            assert np.array_equal(make_rng("vdc").sequence(32), base)
            assert np.array_equal(
                make_rng("halton3").sequence(32), make_rng("halton3").sequence(32)
            )

    def test_nesting_restores_previous_seed(self):
        from repro.rng import default_seed, get_default_seed

        with default_seed(1):
            with default_seed(2):
                assert get_default_seed() == 2
            assert get_default_seed() == 1

    def test_system_rng_is_seedable(self):
        from repro.rng import default_seed

        with default_seed(7):
            a = make_rng("system").sequence(32)
        with default_seed(8):
            b = make_rng("system").sequence(32)
        assert not np.array_equal(a, b)
