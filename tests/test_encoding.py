"""Unit tests for repro.bitstream.encoding."""

import numpy as np
import pytest

from repro.bitstream import Encoding, ones_to_value, probability_of, value_to_ones
from repro.exceptions import EncodingError


class TestEncodingEnum:
    def test_coerce_member(self):
        assert Encoding.coerce(Encoding.UNIPOLAR) is Encoding.UNIPOLAR

    def test_coerce_string(self):
        assert Encoding.coerce("unipolar") is Encoding.UNIPOLAR
        assert Encoding.coerce("BIPOLAR") is Encoding.BIPOLAR

    def test_coerce_unknown(self):
        with pytest.raises(EncodingError):
            Encoding.coerce("nope")

    def test_value_ranges(self):
        assert Encoding.UNIPOLAR.value_range == (0.0, 1.0)
        assert Encoding.BIPOLAR.value_range == (-1.0, 1.0)


class TestOnesToValue:
    def test_unipolar_scalar(self):
        assert ones_to_value(3, 8, Encoding.UNIPOLAR) == 0.375

    def test_bipolar_scalar(self):
        assert ones_to_value(3, 8, Encoding.BIPOLAR) == -0.25

    def test_vectorised(self):
        out = ones_to_value(np.array([0, 4, 8]), 8, Encoding.UNIPOLAR)
        assert np.allclose(out, [0.0, 0.5, 1.0])

    def test_bipolar_extremes(self):
        assert ones_to_value(0, 4, Encoding.BIPOLAR) == -1.0
        assert ones_to_value(4, 4, Encoding.BIPOLAR) == 1.0

    def test_zero_length_rejected(self):
        with pytest.raises(EncodingError):
            ones_to_value(1, 0, Encoding.UNIPOLAR)


class TestValueToOnes:
    def test_unipolar_roundtrip(self):
        for k in range(9):
            assert value_to_ones(k / 8, 8, Encoding.UNIPOLAR) == k

    def test_bipolar_roundtrip(self):
        for k in range(9):
            v = ones_to_value(k, 8, Encoding.BIPOLAR)
            assert value_to_ones(v, 8, Encoding.BIPOLAR) == k

    def test_rounding(self):
        assert value_to_ones(0.49, 2, Encoding.UNIPOLAR) == 1

    def test_out_of_range(self):
        with pytest.raises(EncodingError):
            value_to_ones(1.5, 8, Encoding.UNIPOLAR)
        with pytest.raises(EncodingError):
            value_to_ones(-0.1, 8, Encoding.UNIPOLAR)
        with pytest.raises(EncodingError):
            value_to_ones(-1.5, 8, Encoding.BIPOLAR)


class TestProbabilityOf:
    def test_unipolar_identity(self):
        assert probability_of(0.25, Encoding.UNIPOLAR) == 0.25

    def test_bipolar_mapping(self):
        assert probability_of(0.0, Encoding.BIPOLAR) == 0.5
        assert probability_of(-1.0, Encoding.BIPOLAR) == 0.0
        assert probability_of(1.0, Encoding.BIPOLAR) == 1.0

    def test_out_of_range(self):
        with pytest.raises(EncodingError):
            probability_of(2.0, Encoding.UNIPOLAR)
