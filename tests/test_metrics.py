"""Unit tests for repro.bitstream.metrics — above all the SCC definition."""

import numpy as np
import pytest

from repro.bitstream import (
    Bitstream,
    autocorrelation,
    bias,
    mean_absolute_error,
    overlap_counts,
    scc,
    scc_batch,
    value_of_bits,
)


class TestOverlapCounts:
    def test_basic(self):
        a, b, c, d = overlap_counts("1100", "1010")
        assert (a[0], b[0], c[0], d[0]) == (1, 1, 1, 1)

    def test_sums_to_n(self):
        x = "10101100"
        y = "01100111"
        a, b, c, d = overlap_counts(x, y)
        assert a[0] + b[0] + c[0] + d[0] == 8

    def test_batch_broadcast(self):
        x = np.zeros((3, 4), dtype=np.uint8)
        y = np.ones((1, 4), dtype=np.uint8)
        a, b, c, d = overlap_counts(x, y)
        assert a.shape == (3,)
        assert (c == 4).all()


class TestSCCDefinition:
    """The paper's Section II-B definition, exercised on known cases."""

    def test_paper_table1_positive(self):
        assert scc("10101010", "10111011") == 1.0

    def test_paper_table1_negative(self):
        assert scc("10101010", "11011101") == -1.0

    def test_paper_table1_uncorrelated(self):
        assert scc("10101010", "11111100") == 0.0

    def test_self_correlation_is_one(self):
        assert scc("01101001", "01101001") == 1.0

    def test_complement_is_minus_one(self):
        x = Bitstream("01101001")
        assert scc(x.bits, (~x).bits) == -1.0

    def test_nested_ones_is_plus_one(self):
        # Smaller 1-set strictly inside larger: maximal positive.
        assert scc("01000100", "01100110") == 1.0

    def test_disjoint_ones_is_minus_one(self):
        assert scc("11000000", "00110000") == -1.0

    def test_constant_streams_define_zero(self):
        assert scc("0000", "0110") == 0.0
        assert scc("1111", "0110") == 0.0
        assert scc("1111", "1111") == 0.0
        assert scc("0000", "0000") == 0.0

    def test_range_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            x = rng.integers(0, 2, 32).astype(np.uint8)
            y = rng.integers(0, 2, 32).astype(np.uint8)
            value = scc(x, y)
            assert -1.0 <= value <= 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        for _ in range(100):
            x = rng.integers(0, 2, 24).astype(np.uint8)
            y = rng.integers(0, 2, 24).astype(np.uint8)
            assert scc(x, y) == pytest.approx(scc(y, x))

    def test_forced_overlap_case(self):
        # px + py > 1 forces a >= px+py-1; the -1 extreme uses the
        # max((a+b)+(a+c)-N, 0) clamp in the denominator.
        x = "11110000"
        y = "00011111"
        assert scc(x, y) == -1.0


class TestSCCBatch:
    def test_matches_scalar(self):
        rng = np.random.default_rng(2)
        x = rng.integers(0, 2, (50, 32)).astype(np.uint8)
        y = rng.integers(0, 2, (50, 32)).astype(np.uint8)
        batch = scc_batch(x, y)
        for i in range(50):
            assert batch[i] == pytest.approx(scc(x[i], y[i]))

    def test_shape(self):
        x = np.zeros((7, 16), dtype=np.uint8)
        y = np.zeros((7, 16), dtype=np.uint8)
        assert scc_batch(x, y).shape == (7,)


class TestBiasAndError:
    def test_bias_zero_for_identical(self):
        assert bias("0101", "0101") == 0.0

    def test_bias_sign(self):
        assert bias("0111", "0101") > 0
        assert bias("0001", "0101") < 0

    def test_mae_basic(self):
        assert mean_absolute_error([0.0, 1.0], [0.5, 0.5]) == 0.5

    def test_mae_empty(self):
        assert mean_absolute_error([], []) == 0.0

    def test_mae_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_error([1.0], [1.0, 2.0])

    def test_value_of_bits(self):
        assert value_of_bits("0110") == 0.5
        out = value_of_bits(np.array([[1, 1, 0, 0], [1, 1, 1, 1]], dtype=np.uint8))
        assert np.allclose(out, [0.5, 1.0])


class TestAutocorrelation:
    def test_constant_stream_zero(self):
        assert autocorrelation("1111", lag=1) == 0.0

    def test_alternating_negative(self):
        assert autocorrelation("10101010", lag=1) < -0.9

    def test_lag_validation(self):
        with pytest.raises(ValueError):
            autocorrelation("0101", lag=0)
        with pytest.raises(ValueError):
            autocorrelation("0101", lag=4)

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            autocorrelation(np.zeros((2, 4), dtype=np.uint8), lag=1)
