"""Unit tests for fault injection (repro.faults)."""

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.faults import FaultPoint, fault_sweep, flip_binary_words, flip_bits


class TestFlipBits:
    def test_zero_rate_is_identity(self):
        bits = np.random.default_rng(0).integers(0, 2, (4, 64)).astype(np.uint8)
        assert np.array_equal(flip_bits(bits, 0.0, seed=1), bits)

    def test_full_rate_is_complement(self):
        bits = np.random.default_rng(0).integers(0, 2, (4, 64)).astype(np.uint8)
        assert np.array_equal(flip_bits(bits, 1.0, seed=1), 1 - bits)

    def test_rate_statistics(self):
        bits = np.zeros((64, 256), dtype=np.uint8)
        flipped = flip_bits(bits, 0.1, seed=2)
        assert flipped.mean() == pytest.approx(0.1, abs=0.01)

    def test_deterministic_with_seed(self):
        bits = np.ones((2, 32), dtype=np.uint8)
        assert np.array_equal(flip_bits(bits, 0.5, seed=7), flip_bits(bits, 0.5, seed=7))

    def test_rate_validated(self):
        with pytest.raises(ReproError):
            flip_bits(np.zeros((1, 4), dtype=np.uint8), 1.5)


class TestFlipBinaryWords:
    def test_zero_rate_identity(self):
        words = np.array([0, 100, 255])
        assert np.array_equal(flip_binary_words(words, 8, 0.0, seed=0), words)

    def test_full_rate_complements(self):
        words = np.array([0, 255])
        out = flip_binary_words(words, 8, 1.0, seed=0)
        assert out.tolist() == [255, 0]

    def test_range_validated(self):
        with pytest.raises(ReproError):
            flip_binary_words(np.array([256]), 8, 0.1)

    def test_msb_flip_is_catastrophic(self):
        # The structural point: one flip can move a BE value by half scale.
        words = np.array([0])
        out = flip_binary_words(words, 8, 1e-9, seed=0)  # ~never flips
        assert out[0] == 0
        # Force an MSB flip manually to document the magnitude.
        assert (0 ^ (1 << 7)) / 256 == 0.5


class TestFaultSweep:
    def test_returns_point_per_rate(self):
        points = fault_sweep(rates=(0.0, 0.01), trials=16)
        assert len(points) == 2
        assert isinstance(points[0], FaultPoint)

    def test_zero_rate_zero_error(self):
        point = fault_sweep(rates=(0.0,), trials=16)[0]
        assert point.sc_value_error == pytest.approx(0.0, abs=0.01)
        assert point.be_value_error == 0.0

    def test_sc_degrades_gracefully(self):
        # At equal per-bit fault rates the SC representation loses less
        # value accuracy than the binary one (the paper's intro claim).
        points = fault_sweep(rates=(0.01, 0.05), trials=128, seed=1)
        for point in points:
            assert point.sc_value_error < point.be_value_error

    def test_error_monotone_in_rate(self):
        points = fault_sweep(rates=(0.001, 0.01, 0.1), trials=128, seed=2)
        sc_errors = [p.sc_value_error for p in points]
        assert sc_errors == sorted(sc_errors)

    def test_multiply_error_tracks_rate(self):
        points = fault_sweep(rates=(0.0, 0.05), trials=64, seed=3)
        assert points[1].sc_multiply_error > points[0].sc_multiply_error

    def test_as_row(self):
        row = fault_sweep(rates=(0.01,), trials=8)[0].as_row()
        assert len(row) == 4
