"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table99"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.experiment == "table1"
        assert args.step == 4


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fault_tolerance" in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "PASS" in out

    def test_run_with_step(self, capsys):
        assert main(["run", "fig2", "--step", "32"]) == 0
        assert "Fig. 2" in capsys.readouterr().out

    def test_run_writes_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "t1.txt"
        assert main(["run", "table1", "--out", str(out_file)]) == 0
        capsys.readouterr()
        assert "Table I" in out_file.read_text()

    def test_costs(self, capsys):
        assert main(["costs"]) == 0
        out = capsys.readouterr().out
        assert "regenerator" in out and "sync_max" in out

    def test_run_fault_tolerance(self, capsys):
        assert main(["run", "fault_tolerance"]) == 0
        assert "Error tolerance" in capsys.readouterr().out
