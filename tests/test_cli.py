"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table99"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.experiment == "table1"
        assert args.step == 4


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fault_tolerance" in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "PASS" in out

    def test_run_with_step(self, capsys):
        assert main(["run", "fig2", "--step", "32"]) == 0
        assert "Fig. 2" in capsys.readouterr().out

    def test_run_writes_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "t1.txt"
        assert main(["run", "table1", "--out", str(out_file)]) == 0
        capsys.readouterr()
        assert "Table I" in out_file.read_text()

    def test_costs(self, capsys):
        assert main(["costs"]) == 0
        out = capsys.readouterr().out
        assert "regenerator" in out and "sync_max" in out

    def test_run_fault_tolerance(self, capsys):
        assert main(["run", "fault_tolerance"]) == 0
        assert "Error tolerance" in capsys.readouterr().out


class TestRunnerCommands:
    def test_run_list_enumerates_specs(self, capsys):
        assert main(["run", "--list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "shards" in out
        assert "pairs/shard" in out
        assert "specs," in out and "shards total" in out

    def test_run_unknown_spec_exits_nonzero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "no_such_spec"])
        assert excinfo.value.code != 0

    def test_run_without_spec_or_list_errors(self, capsys):
        assert main(["run"]) == 2
        assert "provide a spec name" in capsys.readouterr().err

    def test_run_logs_cache_hits_on_second_invocation(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(["run", "table1", "--store", store]) == 0
        capsys.readouterr()
        assert main(["run", "table1", "--store", store, "-v"]) == 0
        out = capsys.readouterr().out
        assert "[runner] cache hit table1" in out
        assert "cache miss" not in out
        assert "Table I" in out  # the table still prints

    def test_run_default_is_quiet_per_shard(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(["run", "table1", "--store", store]) == 0
        out = capsys.readouterr().out
        # Without -v the per-shard lines stay at DEBUG; summaries print.
        assert "cache miss table1" not in out
        assert "cache hit table1" not in out
        assert "[runner] done in" in out
        assert "1 shard(s)" in out

    def test_run_fidelity_smoke_with_jobs(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(["run", "table3", "--fidelity", "smoke",
                     "--jobs", "2", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out and "jobs=2" in out

    def test_run_seed_recorded_and_cached_separately(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(["run", "fault_tolerance", "--store", store,
                     "--seed", "123"]) == 0
        out = capsys.readouterr().out
        assert "seed=123" in out
        # Different seed -> different content address -> recompute.
        assert main(["run", "fault_tolerance", "--store", store,
                     "--seed", "124", "-v"]) == 0
        assert "cache miss" in capsys.readouterr().out

    def test_run_force_recomputes(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        main(["run", "table1", "--store", store])
        capsys.readouterr()
        assert main(["run", "table1", "--store", store, "--force"]) == 0
        out = capsys.readouterr().out
        assert "[runner] cache hit" not in out
        assert "0 cache hit(s), 1 computed" in out

    def test_run_positional_fidelity_with_trace_and_stats(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        store = str(tmp_path / "store")
        trace_file = tmp_path / "trace.json"
        assert main(["run", "table1", "smoke", "--store", store,
                     "--trace", str(trace_file), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "fidelity=smoke" in out
        assert "runner.run_many" in out  # profile tree printed
        counts = validate_chrome_trace(json.loads(trace_file.read_text()))
        assert counts["X"] >= 1
        # The traced run also persisted artifacts under <store>/obs/.
        assert main(["stats", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "runner_cache_hit_rate" in out
        assert "runner.run_many" in out

    def test_stats_without_artifacts_errors(self, capsys, tmp_path):
        assert main(["stats", "--store", str(tmp_path / "store")]) == 1
        assert "no stats documents" in capsys.readouterr().err

    def test_report_round_trip(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        out_dir = tmp_path / "archives"
        main(["run", "table1", "--fidelity", "smoke", "--store", store])
        capsys.readouterr()
        assert main(["report", "--fidelity", "smoke", "--store", store,
                     "--out-dir", str(out_dir),
                     "--md", str(tmp_path / "EXPERIMENTS.md")]) == 1
        out = capsys.readouterr().out
        assert "wrote" in out and "incomplete" in out  # table1 yes, rest missing
        assert "Table I" in (out_dir / "table1.txt").read_text()
        assert "table1" in (tmp_path / "EXPERIMENTS.md").read_text()
        # check mode agrees with what report just wrote
        assert main(["report", "--fidelity", "smoke", "--store", store,
                     "--out-dir", str(out_dir)]) == 1  # still incomplete specs
        assert (out_dir / "table1.txt").exists()


class TestEngineCommands:
    def test_engine_requires_known_graph(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["engine", "no_such_graph"])

    def test_engine_prints_plan_and_audit(self, capsys):
        assert main(["engine", "fsm_zoo"]) == 0
        out = capsys.readouterr().out
        assert "execution plan" in out
        assert "level 0" in out
        assert "kernel:" in out and "packed" in out
        assert "plan cache" in out and ("hit" in out or "miss" in out)
        assert "Engine audit" in out

    def test_engine_cache_hit_on_second_compile(self, capsys):
        from repro import engine

        engine.clear_cache()
        main(["engine", "correlated_multiply"])
        capsys.readouterr()
        # Same structure compiles to the same cached plan the second time.
        assert main(["engine", "correlated_multiply"]) == 0
        assert "hit" in capsys.readouterr().out

    def test_engine_profile_prints_span_tree(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        trace_file = tmp_path / "engine-trace.json"
        assert main(["engine", "fsm_zoo", "--profile",
                     "--trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "Engine audit" in out
        assert "engine.execute" in out  # profile tree row
        validate_chrome_trace(json.loads(trace_file.read_text()))

    def test_audit_reports_violation_status(self, capsys):
        assert main(["audit", "correlated_multiply"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATED" in out and "violations: 1/1" in out
        assert main(["audit", "fsm_zoo"]) == 0
        assert "violations: 0/" in capsys.readouterr().out

    def test_audit_fix_inserts_and_clears(self, capsys):
        assert main(["audit", "correlated_multiply", "--fix"]) == 0
        out = capsys.readouterr().out
        assert "inserted prod: decorrelator" in out
        assert "After autofix" in out

    def test_audit_length_flag(self, capsys):
        assert main(["audit", "uncorrelated_subtract", "--length", "128"]) in (0, 1)
        assert "N=128" in capsys.readouterr().out
