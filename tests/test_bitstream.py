"""Unit tests for repro.bitstream.bitstream.Bitstream."""

import numpy as np
import pytest

from repro.bitstream import Bitstream, Encoding
from repro.exceptions import EncodingError, LengthMismatchError


class TestConstruction:
    def test_from_string(self):
        s = Bitstream("01000100")
        assert s.length == 8
        assert s.ones == 2
        assert s.value == 0.25

    def test_from_list(self):
        s = Bitstream([0, 1, 1, 0])
        assert s.value == 0.5

    def test_from_numpy(self):
        s = Bitstream(np.array([1, 1, 1, 0], dtype=np.uint8))
        assert s.value == 0.75

    def test_from_bool_array(self):
        s = Bitstream(np.array([True, False]))
        assert s.ones == 1

    def test_rejects_non_binary_string(self):
        with pytest.raises(EncodingError):
            Bitstream("01012")

    def test_rejects_non_binary_values(self):
        with pytest.raises(EncodingError):
            Bitstream([0, 1, 2])

    def test_rejects_empty(self):
        with pytest.raises(EncodingError):
            Bitstream("")

    def test_rejects_2d(self):
        with pytest.raises(EncodingError):
            Bitstream(np.zeros((2, 4), dtype=np.uint8))

    def test_bits_are_read_only(self):
        s = Bitstream("0101")
        with pytest.raises(ValueError):
            s.bits[0] = 1

    def test_encoding_by_string_name(self):
        s = Bitstream("01100001", "bipolar")
        assert s.encoding is Encoding.BIPOLAR

    def test_unknown_encoding_rejected(self):
        with pytest.raises(EncodingError):
            Bitstream("01", "ternary")


class TestValues:
    def test_paper_unipolar_example(self):
        # Section II-A: X = 01100001 has value 3/8 unipolar.
        assert Bitstream("01100001").value == 3 / 8

    def test_paper_bipolar_example(self):
        # Section II-A: the same stream is -1/4 bipolar.
        assert Bitstream("01100001", Encoding.BIPOLAR).value == -0.25

    def test_probability_is_encoding_independent(self):
        bits = "01100001"
        assert Bitstream(bits).probability == Bitstream(bits, "bipolar").probability

    def test_all_zeros_and_ones(self):
        assert Bitstream("0000").value == 0.0
        assert Bitstream("1111").value == 1.0
        assert Bitstream("0000", "bipolar").value == -1.0
        assert Bitstream("1111", "bipolar").value == 1.0

    def test_with_encoding_reinterprets(self):
        s = Bitstream("0110")
        assert s.with_encoding("bipolar").value == 0.0
        assert s.with_encoding("bipolar").bits is s.bits or np.array_equal(
            s.with_encoding("bipolar").bits, s.bits
        )


class TestOperators:
    def test_and_is_table1_multiply(self):
        x = Bitstream("01010101")
        y = Bitstream("11111100")
        assert (x & y).value == 0.375

    def test_or(self):
        x = Bitstream("0101")
        y = Bitstream("0011")
        assert (x | y).to01() == "0111"

    def test_xor(self):
        x = Bitstream("0101")
        y = Bitstream("0011")
        assert (x ^ y).to01() == "0110"

    def test_invert_complements_value(self):
        s = Bitstream("0111")
        assert (~s).value == pytest.approx(1 - s.value)

    def test_length_mismatch_raises(self):
        with pytest.raises(LengthMismatchError):
            Bitstream("01") & Bitstream("011")

    def test_encoding_mismatch_raises(self):
        with pytest.raises(EncodingError):
            Bitstream("01") & Bitstream("01", "bipolar")

    def test_delayed_shifts_right(self):
        s = Bitstream("1100")
        assert s.delayed(1).to01() == "0110"
        assert s.delayed(2).to01() == "0011"

    def test_delayed_fill_one(self):
        assert Bitstream("0000").delayed(2, fill=1).to01() == "1100"

    def test_delayed_zero_is_identity(self):
        s = Bitstream("1010")
        assert s.delayed(0) is s

    def test_delayed_beyond_length_saturates(self):
        assert Bitstream("1111").delayed(10).value == 0.0

    def test_delayed_rejects_negative(self):
        with pytest.raises(ValueError):
            Bitstream("01").delayed(-1)


class TestEqualityAndRepr:
    def test_equality(self):
        assert Bitstream("0101") == Bitstream([0, 1, 0, 1])
        assert Bitstream("0101") != Bitstream("0110")
        assert Bitstream("0101") != Bitstream("0101", "bipolar")

    def test_hash_consistency(self):
        assert hash(Bitstream("0101")) == hash(Bitstream("0101"))

    def test_len_and_iter(self):
        s = Bitstream("101")
        assert len(s) == 3
        assert list(s) == [1, 0, 1]

    def test_repr_contains_value(self):
        assert "0.5" in repr(Bitstream("01"))

    def test_to01_roundtrip(self):
        text = "0110100110010110"
        assert Bitstream(text).to01() == text
