"""Unit tests for the image pipeline (repro.pipeline)."""

import numpy as np
import pytest

from repro.exceptions import PipelineError
from repro.pipeline import (
    GAUSSIAN_3X3,
    AcceleratorConfig,
    SCAccelerator,
    SCGaussianBlur,
    SCRobertsCross,
    WEIGHT_SLOTS,
    blob_image,
    checkerboard_image,
    gaussian_blur_reference,
    gradient_image,
    image_mae,
    image_psnr,
    noise_image,
    pipeline_reference,
    roberts_cross_reference,
    standard_test_images,
    tile_origins,
)
from repro.core import Synchronizer
from repro.rng import Halton, VanDerCorput


class TestImages:
    def test_all_generators_in_range(self):
        for img in (gradient_image(16), blob_image(16), checkerboard_image(16),
                    noise_image(16)):
            assert img.shape == (16, 16)
            assert img.min() >= 0.0 and img.max() <= 1.0

    def test_gradient_monotone_along_axis(self):
        img = gradient_image(16, angle=0.0)
        assert (np.diff(img, axis=1) >= 0).all()

    def test_checkerboard_binary(self):
        img = checkerboard_image(16, cell=4)
        assert set(np.unique(img)) == {0.0, 1.0}

    def test_deterministic(self):
        assert np.array_equal(blob_image(16, seed=3), blob_image(16, seed=3))
        assert not np.array_equal(blob_image(16, seed=3), blob_image(16, seed=4))

    def test_standard_set(self):
        images = standard_test_images(16)
        assert set(images) == {"gradient", "blobs", "checker", "noise"}

    def test_size_validation(self):
        with pytest.raises(PipelineError):
            gradient_image(2)


class TestTiling:
    def test_exact_cover(self):
        assert tile_origins(64, 10, 7)[-1] == 54

    def test_clamped_final_tile(self):
        origins = tile_origins(32, 10, 7)
        assert origins[-1] == 22
        assert all(o + 10 <= 32 for o in origins)

    def test_full_coverage(self):
        origins = tile_origins(50, 10, 7)
        covered = set()
        for o in origins:
            covered.update(range(o, o + 10))
        assert covered == set(range(50))

    def test_tile_too_large(self):
        with pytest.raises(PipelineError):
            tile_origins(8, 10, 7)

    def test_bad_stride(self):
        with pytest.raises(PipelineError):
            tile_origins(20, 10, 0)


class TestReferenceKernels:
    def test_gaussian_kernel_normalised(self):
        assert GAUSSIAN_3X3.sum() == pytest.approx(1.0)

    def test_blur_of_constant_is_constant(self):
        img = np.full((8, 8), 0.5)
        out = gaussian_blur_reference(img)
        assert np.allclose(out, 0.5)

    def test_blur_shape(self):
        assert gaussian_blur_reference(np.zeros((10, 12))).shape == (8, 10)

    def test_blur_smooths_checkerboard(self):
        img = checkerboard_image(16, cell=1)
        out = gaussian_blur_reference(img)
        assert out.std() < img.std()

    def test_roberts_of_constant_is_zero(self):
        assert roberts_cross_reference(np.full((6, 6), 0.7)).max() == 0.0

    def test_roberts_shape(self):
        assert roberts_cross_reference(np.zeros((6, 8))).shape == (5, 7)

    def test_roberts_detects_step_edge(self):
        img = np.zeros((6, 6))
        img[:, 3:] = 1.0
        out = roberts_cross_reference(img)
        assert out[:, 2].max() > 0.4

    def test_pipeline_reference_shape(self):
        assert pipeline_reference(np.zeros((10, 10))).shape == (7, 7)

    def test_image_validation(self):
        with pytest.raises(PipelineError):
            gaussian_blur_reference(np.full((8, 8), 2.0))
        with pytest.raises(PipelineError):
            gaussian_blur_reference(np.zeros((2, 2)))
        with pytest.raises(PipelineError):
            gaussian_blur_reference(np.zeros((4, 4, 3)))


class TestSCGaussianBlur:
    def test_slot_table_realises_kernel(self):
        counts = np.bincount(WEIGHT_SLOTS, minlength=9) / 16.0
        assert np.allclose(counts.reshape(3, 3), GAUSSIAN_3X3)

    def test_constant_tile_blurs_to_constant(self):
        blur = SCGaussianBlur(VanDerCorput(8))
        bits = np.ones((5, 5, 64), dtype=np.uint8)
        out = blur.blur_tile(bits)
        assert out.shape == (3, 3, 64)
        assert out.min() == 1

    def test_matches_reference_on_random_tile(self):
        rng = np.random.default_rng(0)
        tile = rng.random((6, 6))
        levels = np.rint(tile * 256).astype(np.int64)
        seq = Halton(7, 8).sequence(256)
        bits = (levels[..., None] > seq).astype(np.uint8)
        blur = SCGaussianBlur(VanDerCorput(8))
        out = blur.blur_tile(bits).mean(axis=2)
        ref = gaussian_blur_reference(tile)
        assert np.abs(out - ref).mean() < 0.03

    def test_select_rotation_keeps_accuracy(self):
        rng = np.random.default_rng(1)
        tile = rng.random((6, 6))
        levels = np.rint(tile * 256).astype(np.int64)
        seq = Halton(7, 8).sequence(256)
        bits = (levels[..., None] > seq).astype(np.uint8)
        blur = SCGaussianBlur(VanDerCorput(8), select_phase_step=17)
        out = blur.blur_tile(bits).mean(axis=2)
        assert np.abs(out - gaussian_blur_reference(tile)).mean() < 0.03

    def test_tile_too_small(self):
        blur = SCGaussianBlur(VanDerCorput(8))
        with pytest.raises(PipelineError):
            blur.blur_tile(np.ones((2, 5, 16), dtype=np.uint8))

    def test_requires_3d(self):
        blur = SCGaussianBlur(VanDerCorput(8))
        with pytest.raises(PipelineError):
            blur.blur_tile(np.ones((5, 16), dtype=np.uint8))


class TestSCRobertsCross:
    def test_constant_input_zero_edges(self):
        det = SCRobertsCross(Halton(5, 8))
        bits = np.ones((4, 4, 64), dtype=np.uint8)
        out = det.detect_tile(bits)
        assert out.shape == (3, 3, 64)
        assert out.sum() == 0

    def test_synchronized_detector_accurate_on_step_edge(self):
        # Build a tile of streams from one shared sequence, step edge at 2.
        values = np.zeros((4, 4))
        values[:, 2:] = 0.8
        levels = np.rint(values * 256).astype(np.int64)
        # Use per-pixel independent RNG phases so inputs are uncorrelated
        # and only the synchronizer can fix them.
        seq = VanDerCorput(8).sequence(256 + 16)
        bits = np.empty((4, 4, 256), dtype=np.uint8)
        k = 0
        for i in range(4):
            for j in range(4):
                bits[i, j] = (levels[i, j] > np.roll(seq[:256], 13 * k)).astype(np.uint8)
                k += 1
        plain = SCRobertsCross(Halton(5, 8))
        synced = SCRobertsCross(Halton(5, 8), lambda: Synchronizer(1))
        ref = roberts_cross_reference(values)
        err_plain = np.abs(plain.detect_tile(bits).mean(axis=2) - ref).mean()
        err_sync = np.abs(synced.detect_tile(bits).mean(axis=2) - ref).mean()
        assert err_sync < err_plain

    def test_uses_pair_transform_flag(self):
        assert not SCRobertsCross(Halton(5, 8)).uses_pair_transform
        assert SCRobertsCross(Halton(5, 8), lambda: Synchronizer(1)).uses_pair_transform

    def test_tile_too_small(self):
        det = SCRobertsCross(Halton(5, 8))
        with pytest.raises(PipelineError):
            det.detect_tile(np.ones((1, 4, 16), dtype=np.uint8))


class TestQualityMetrics:
    def test_mae_zero_for_identical(self):
        img = gradient_image(8)
        assert image_mae(img, img) == 0.0

    def test_mae_value(self):
        assert image_mae(np.zeros((2, 2)), np.full((2, 2), 0.5)) == 0.5

    def test_psnr_infinite_for_identical(self):
        img = gradient_image(8)
        assert image_psnr(img, img) == float("inf")

    def test_psnr_finite_and_positive(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 0.1)
        assert 0 < image_psnr(a, b) < 100

    def test_shape_mismatch(self):
        with pytest.raises(PipelineError):
            image_mae(np.zeros((2, 2)), np.zeros((3, 3)))


class TestAccelerator:
    def test_config_validation(self):
        with pytest.raises(PipelineError):
            AcceleratorConfig(variant="quantum")
        with pytest.raises(PipelineError):
            AcceleratorConfig(stream_length=4)
        with pytest.raises(PipelineError):
            AcceleratorConfig(tile=3)

    def test_geometry_properties(self):
        cfg = AcceleratorConfig(tile=10)
        assert cfg.blur_tile == 8
        assert cfg.output_tile == 7

    def test_process_tile_shape(self):
        acc = SCAccelerator(AcceleratorConfig(variant="none", stream_length=64))
        out = acc.process_tile(np.full((10, 10), 0.5))
        assert out.shape == (7, 7)

    def test_process_tile_validates_shape(self):
        acc = SCAccelerator(AcceleratorConfig(variant="none"))
        with pytest.raises(PipelineError):
            acc.process_tile(np.zeros((5, 5)))

    def test_constant_image_yields_near_zero_edges(self):
        acc = SCAccelerator(AcceleratorConfig(variant="synchronizer", stream_length=128))
        result = acc.process(np.full((14, 14), 0.5))
        assert result.output.mean() < 0.1

    def test_image_validation(self):
        acc = SCAccelerator(AcceleratorConfig(variant="none"))
        with pytest.raises(PipelineError):
            acc.process(np.full((14, 14), 1.5))
        with pytest.raises(PipelineError):
            acc.process(np.zeros((14, 14, 3)))

    @pytest.mark.parametrize("variant", ("none", "regeneration", "synchronizer"))
    def test_all_variants_run(self, variant):
        acc = SCAccelerator(AcceleratorConfig(variant=variant, stream_length=64))
        result = acc.process(blob_image(14))
        assert result.variant == variant
        assert result.output.shape == (11, 11)
        assert result.mean_abs_error >= 0.0
        assert result.area_um2 > 0 and result.power_uw > 0

    def test_quality_ordering(self):
        image = blob_image(24)
        maes = {}
        for variant in ("none", "regeneration", "synchronizer"):
            acc = SCAccelerator(AcceleratorConfig(variant=variant))
            maes[variant] = acc.process(image).mean_abs_error
        assert maes["regeneration"] < maes["none"]
        assert maes["synchronizer"] < maes["none"]

    def test_cost_breakdown_blocks(self):
        acc = SCAccelerator(AcceleratorConfig(variant="regeneration"))
        blocks = acc.cost_breakdown()
        assert "regenerators" in blocks
        assert "input_d2s" in blocks
        acc2 = SCAccelerator(AcceleratorConfig(variant="synchronizer"))
        assert "synchronizers" in acc2.cost_breakdown()

    def test_netlist_total_consistent_with_breakdown(self):
        acc = SCAccelerator(AcceleratorConfig(variant="synchronizer"))
        total = acc.netlist()
        blocks = acc.cost_breakdown()
        assert total.area_um2 == pytest.approx(sum(v[0] for v in blocks.values()))

    def test_manipulation_power(self):
        regen = SCAccelerator(AcceleratorConfig(variant="regeneration"))
        sync = SCAccelerator(AcceleratorConfig(variant="synchronizer"))
        none = SCAccelerator(AcceleratorConfig(variant="none"))
        assert none.manipulation_power_uw() == 0.0
        assert regen.manipulation_power_uw() > sync.manipulation_power_uw()

    def test_energy_scales_with_tiles(self):
        acc = SCAccelerator(AcceleratorConfig(variant="none", stream_length=64))
        result = acc.process(blob_image(20))
        assert result.energy_per_image_nj == pytest.approx(
            result.energy_per_frame_nj * result.tiles
        )
