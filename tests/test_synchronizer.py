"""Unit tests for the synchronizer FSM (paper Fig. 3a)."""

import numpy as np
import pytest

from repro.bitstream import Bitstream, scc, scc_batch
from repro.core import Synchronizer
from repro.exceptions import CircuitConfigurationError, EncodingError

from tests.helpers import make_pair_batch
from repro.rng import Halton, LFSR, VanDerCorput


def run(sync, x_str, y_str):
    x, y = sync.process_pair(Bitstream(x_str), Bitstream(y_str))
    return x.to01(), y.to01()


class TestFig3aTransitions:
    """Cycle-by-cycle checks of every edge in the paper's D=1 FSM."""

    def test_equal_inputs_pass_through(self):
        assert run(Synchronizer(1), "0101", "0101") == ("0101", "0101")
        assert run(Synchronizer(1), "0000", "0000") == ("0000", "0000")

    def test_save_unpaired_x_bit(self):
        # S0 --(1,0)/(0,0)--> S1: X's surplus 1 is saved, outputs 0,0.
        assert run(Synchronizer(1), "10", "00") == ("00", "00")

    def test_save_unpaired_y_bit(self):
        assert run(Synchronizer(1), "00", "10")[0] == "00"

    def test_pair_saved_x_bit(self):
        # (1,0) then (0,1): saved X 1 pairs with Y's 1 -> both emit (1,1).
        assert run(Synchronizer(1), "10", "01") == ("01", "01")

    def test_pair_saved_y_bit(self):
        assert run(Synchronizer(1), "01", "10") == ("01", "01")

    def test_saturation_passes_through(self):
        # Two X-surplus 1s in a row with D=1: second passes unsynchronised.
        x_out, y_out = run(Synchronizer(1), "110", "000")
        assert x_out == "010"  # first saved (stuck), second passes
        assert y_out == "000"

    def test_paper_values_preserved_when_pairable(self):
        # Same values, shifted phase: output values must match inputs.
        x, y = run(Synchronizer(1), "10101010", "01010101")
        assert Bitstream(x).value + Bitstream(y).value == pytest.approx(1.0)


class TestCorrelationInduction:
    def test_increases_scc_uncorrelated_inputs(self):
        x, y, _, _ = make_pair_batch(VanDerCorput(8), Halton(3, 8), step=16)
        out_x, out_y = Synchronizer(1)._process_bits(x, y)
        assert scc_batch(out_x, out_y).mean() > scc_batch(x, y).mean() + 0.5

    def test_output_scc_near_one(self):
        x, y, _, _ = make_pair_batch(VanDerCorput(8), Halton(3, 8), step=16)
        out_x, out_y = Synchronizer(1)._process_bits(x, y)
        assert scc_batch(out_x, out_y).mean() > 0.85

    def test_already_correlated_inputs_stay_correlated(self):
        x, y, _, _ = make_pair_batch(VanDerCorput(8), VanDerCorput(8), step=16)
        out_x, out_y = Synchronizer(1)._process_bits(x, y)
        assert scc_batch(out_x, out_y).mean() >= scc_batch(x, y).mean() - 0.01

    def test_deeper_depth_stronger(self):
        x, y, _, _ = make_pair_batch(LFSR(8), VanDerCorput(8), step=16)
        s1 = scc_batch(*Synchronizer(1)._process_bits(x, y)).mean()
        s4 = scc_batch(*Synchronizer(4)._process_bits(x, y)).mean()
        assert s4 >= s1 - 0.005


class TestValueConservation:
    def test_ones_never_created(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 2, (64, 128)).astype(np.uint8)
        y = rng.integers(0, 2, (64, 128)).astype(np.uint8)
        out_x, out_y = Synchronizer(2)._process_bits(x, y)
        assert (out_x.sum(axis=1) <= x.sum(axis=1)).all()
        assert (out_y.sum(axis=1) <= y.sum(axis=1)).all()

    def test_loss_bounded_by_depth(self):
        rng = np.random.default_rng(1)
        for depth in (1, 2, 4):
            x = rng.integers(0, 2, (32, 100)).astype(np.uint8)
            y = rng.integers(0, 2, (32, 100)).astype(np.uint8)
            out_x, out_y = Synchronizer(depth)._process_bits(x, y)
            lost = (x.sum(axis=1) - out_x.sum(axis=1)) + (y.sum(axis=1) - out_y.sum(axis=1))
            assert (lost <= depth).all()

    def test_stuck_bits_diagnostic(self):
        sync = Synchronizer(1)
        x = np.array([[1, 0, 0, 0]], dtype=np.uint8)
        y = np.array([[0, 0, 0, 0]], dtype=np.uint8)
        assert sync.stuck_bits(x, y).tolist() == [1]

    def test_bias_small_on_sweep(self):
        x, y, _, _ = make_pair_batch(VanDerCorput(8), Halton(3, 8), step=16)
        out_x, out_y = Synchronizer(1)._process_bits(x, y)
        assert abs((out_x.mean(axis=1) - x.mean(axis=1)).mean()) < 0.01
        assert abs((out_y.mean(axis=1) - y.mean(axis=1)).mean()) < 0.01


class TestFlush:
    def test_flush_emits_trailing_saved_bit(self):
        # Without flush the saved X 1 is stuck; with flush it must drain.
        plain_x, _ = run(Synchronizer(1), "1000", "0000")
        flush_x, _ = run(Synchronizer(1, flush=True), "1000", "0000")
        assert plain_x.count("1") == 0
        assert flush_x.count("1") == 1

    def test_flush_loss_never_worse_than_plain(self):
        # Flush can't repay a saved bit when the tail cycle already carries
        # a natural 1 (paper: flush *mitigates*, not eliminates, stuck
        # bits) — but it must never lose more than the plain FSM.
        rng = np.random.default_rng(2)
        x = rng.integers(0, 2, (64, 64)).astype(np.uint8)
        y = rng.integers(0, 2, (64, 64)).astype(np.uint8)
        plain = Synchronizer(1).stuck_bits(x, y)
        flushed = Synchronizer(1, flush=True).stuck_bits(x, y)
        assert (flushed <= plain).all()
        assert (flushed <= 1).all()

    def test_flush_reduces_total_loss_at_depth(self):
        rng = np.random.default_rng(3)
        x = rng.integers(0, 2, (64, 48)).astype(np.uint8)
        y = rng.integers(0, 2, (64, 48)).astype(np.uint8)
        plain = Synchronizer(4).stuck_bits(x, y).sum()
        flushed = Synchronizer(4, flush=True).stuck_bits(x, y).sum()
        assert flushed <= plain


class TestConfiguration:
    def test_depth_validated(self):
        with pytest.raises(CircuitConfigurationError):
            Synchronizer(0)

    def test_initial_state_bounds(self):
        with pytest.raises(ValueError):
            Synchronizer(1, initial_state=2)

    def test_initial_state_prepaid_bit(self):
        # Starting in S1 (saved X bit) lets an early (0,1) pair immediately.
        x, y = run(Synchronizer(1, initial_state=1), "00", "01")
        assert (x, y) == ("01", "01")

    def test_name_reflects_config(self):
        assert "D=2" in Synchronizer(2).name
        assert "flush" in Synchronizer(1, flush=True).name

    def test_encoding_mismatch_raises(self):
        with pytest.raises(EncodingError):
            Synchronizer(1).process_pair(Bitstream("01"), Bitstream("01", "bipolar"))

    def test_container_kind_preserved(self):
        x = Bitstream("0110")
        y = Bitstream("1010")
        ox, oy = Synchronizer(1).process_pair(x, y)
        assert isinstance(ox, Bitstream) and isinstance(oy, Bitstream)
        arr_x, arr_y = Synchronizer(1)._process_bits(
            np.array([[0, 1]], dtype=np.uint8), np.array([[1, 0]], dtype=np.uint8)
        )
        assert isinstance(arr_x, np.ndarray)
