"""Unit tests for the desynchronizer FSM (paper Fig. 3b)."""

import numpy as np
import pytest

from repro.bitstream import Bitstream, scc_batch
from repro.core import Desynchronizer
from repro.exceptions import CircuitConfigurationError

from tests.helpers import make_pair_batch
from repro.rng import Halton, LFSR, VanDerCorput


def run(desync, x_str, y_str):
    x, y = desync.process_pair(Bitstream(x_str), Bitstream(y_str))
    return x.to01(), y.to01()


class TestFig3bTransitions:
    """Cycle-by-cycle checks of every edge in the paper's D=1 cycle FSM."""

    def test_differing_inputs_pass_through(self):
        assert run(Desynchronizer(1), "10", "01") == ("10", "01")
        assert run(Desynchronizer(1), "01", "10") == ("01", "10")

    def test_save_paired_x_bit(self):
        # S0 --(1,1)/(0,1)--> save X's 1, emit Y's alone.
        assert run(Desynchronizer(1), "1", "1") == ("0", "1")

    def test_emit_saved_x_bit(self):
        # (1,1) then (0,0): the saved X 1 drains on the zero pair.
        assert run(Desynchronizer(1), "10", "10") == ("01", "10")

    def test_alternation_saves_y_second(self):
        # After a full save/emit cycle of an X bit, the next save takes Y's.
        x, y = run(Desynchronizer(1), "1010", "1010")
        # cycle structure: save X (0,1); emit X (1,0); save Y (1,0); emit Y (0,1)
        assert (x, y) == ("0110", "1001")

    def test_saturation_passes_both_ones(self):
        # With a bit already saved, a second (1,1) passes through.
        x, y = run(Desynchronizer(1), "11", "11")
        assert (x, y) == ("01", "11")

    def test_zero_pairs_with_empty_queue_pass(self):
        assert run(Desynchronizer(1), "00", "00") == ("00", "00")

    def test_values_preserved_when_drained(self):
        x, y = run(Desynchronizer(1), "1100", "1010")
        assert Bitstream(x).ones == 2
        assert Bitstream(y).ones == 2


class TestCorrelationReduction:
    def test_uncorrelated_inputs_become_negative(self):
        x, y, _, _ = make_pair_batch(VanDerCorput(8), Halton(3, 8), step=16)
        out_x, out_y = Desynchronizer(1)._process_bits(x, y)
        assert scc_batch(out_x, out_y).mean() < -0.75

    def test_positively_correlated_inputs_flip_negative(self):
        x, y, _, _ = make_pair_batch(Halton(3, 8), Halton(3, 8), step=16)
        assert scc_batch(x, y).mean() > 0.85
        out_x, out_y = Desynchronizer(1)._process_bits(x, y)
        assert scc_batch(out_x, out_y).mean() < -0.7

    def test_deeper_depth_stronger(self):
        x, y, _, _ = make_pair_batch(LFSR(8), VanDerCorput(8), step=16)
        s1 = scc_batch(*Desynchronizer(1)._process_bits(x, y)).mean()
        s4 = scc_batch(*Desynchronizer(4)._process_bits(x, y)).mean()
        assert s4 <= s1 + 0.005


class TestValueConservation:
    def test_total_ones_never_created(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 2, (64, 128)).astype(np.uint8)
        y = rng.integers(0, 2, (64, 128)).astype(np.uint8)
        out_x, out_y = Desynchronizer(2)._process_bits(x, y)
        total_in = x.sum() + y.sum()
        total_out = out_x.sum() + out_y.sum()
        assert total_out <= total_in

    def test_loss_bounded_by_depth(self):
        rng = np.random.default_rng(1)
        for depth in (1, 2, 4):
            x = rng.integers(0, 2, (32, 100)).astype(np.uint8)
            y = rng.integers(0, 2, (32, 100)).astype(np.uint8)
            stuck = Desynchronizer(depth).stuck_bits(x, y)
            assert (stuck <= depth).all()
            assert (stuck >= 0).all()

    def test_bias_small_on_sweep(self):
        x, y, _, _ = make_pair_batch(VanDerCorput(8), Halton(3, 8), step=16)
        out_x, out_y = Desynchronizer(1)._process_bits(x, y)
        assert abs((out_x.mean(axis=1) - x.mean(axis=1)).mean()) < 0.01
        assert abs((out_y.mean(axis=1) - y.mean(axis=1)).mean()) < 0.01


class TestFlush:
    def test_flush_drains_trailing_saved_bit(self):
        plain_x, plain_y = run(Desynchronizer(1), "1100", "1111")
        flush_x, flush_y = run(Desynchronizer(1, flush=True), "1100", "1111")
        total_plain = plain_x.count("1") + plain_y.count("1")
        total_flush = flush_x.count("1") + flush_y.count("1")
        assert total_flush >= total_plain

    def test_flush_d1_loss_never_worse_than_plain(self):
        rng = np.random.default_rng(2)
        x = rng.integers(0, 2, (64, 64)).astype(np.uint8)
        y = rng.integers(0, 2, (64, 64)).astype(np.uint8)
        plain = Desynchronizer(1).stuck_bits(x, y)
        flushed = Desynchronizer(1, flush=True).stuck_bits(x, y)
        assert (flushed <= plain).all()
        assert (flushed <= 1).all()
        assert (flushed >= 0).all()


class TestConfiguration:
    def test_depth_validated(self):
        with pytest.raises(CircuitConfigurationError):
            Desynchronizer(0)

    def test_first_save_side(self):
        # first_save='y' saves Y's bit on the first (1,1).
        x, y = run(Desynchronizer(1, first_save="y"), "1", "1")
        assert (x, y) == ("1", "0")

    def test_first_save_validated(self):
        with pytest.raises(ValueError):
            Desynchronizer(1, first_save="z")

    def test_name(self):
        assert "D=3" in Desynchronizer(3).name
