"""Persistent execution runtime (repro.engine.pool).

The pool must be a pure *runtime* swap: warm long-lived workers with
shared-memory arenas produce exactly the bits the fork-per-call lanes
and the sequential walk produce. These tests pin that contract — the
hypothesis bit-identity property across every pair family, the warm
plan-cache behaviour on repeat calls, killed-worker respawn, the
fallback rules (off / busy / unpicklable / jobs=1), idempotent
shutdown, and the :class:`SharedArena` segment lifecycle (freelist
reuse, zero-copy round trips, no ``/dev/shm`` residue).
"""

import glob
import os
import signal
import subprocess
import sys
import time
import uuid

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import engine, obs
from repro.engine import pool as pool_mod
from repro.engine import run_streaming
from repro.engine.executor import run_batch
from repro.engine.library import build_graph
from repro.engine.pool import (
    SharedArena,
    SharedSink,
    attach_view,
    default_pool,
    get_pool,
    pool_call,
    set_default_pool,
    shutdown_pool,
    unwrap,
)
from repro.graph.graph import SCGraph
from repro.graph.nodes import TransformNode
from tests.helpers import assert_backends_equivalent
from tests.test_parallel_streaming import PAIR_FAMILIES

compile_graph = engine.compile

pytestmark = pytest.mark.skipif(
    pool_mod._fork_context() is None,
    reason="persistent pool requires the fork start method",
)


@pytest.fixture(autouse=True)
def _pool_enabled():
    """Run every test with the pool on, restoring the ambient default."""
    previous = default_pool()
    set_default_pool(True)
    yield
    set_default_pool(previous)


def _test_arena() -> SharedArena:
    """A standalone arena with a unique segment prefix, so its names can
    never collide with the process-wide pool's arena (same pid, both
    counters start at zero) or linger in the worker attach cache."""
    arena = SharedArena()
    arena._prefix = f"{pool_mod._SHM_PREFIX}_{os.getpid()}_t{uuid.uuid4().hex[:8]}"
    return arena


def _raise_on_unpickle():
    raise RuntimeError("exploded while unpickling in the worker")


class _ExplodesInWorker:
    """Pickles fine in the parent; ``pickle.loads`` raises worker-side."""

    def __reduce__(self):
        return (_raise_on_unpickle, ())


def _pair_graph(factory):
    """Two sources through one correlation-manipulating pair, combined:
    the minimal stateful graph exercising the FSM hand-off for a family."""
    g = SCGraph()
    g.source("a", 0.7, "vdc")
    g.source("b", 0.4, "halton3")
    shared: dict = {}
    pair = factory()
    g.add(TransformNode("p_x", pair, ("a", "b"), 0, shared))
    g.add(TransformNode("p_y", pair, ("a", "b"), 1, shared))
    g.op("out", "sub", "p_x", "p_y")
    return g


# ---------------------------------------------------------------------- #
# 1. Bit identity: pool == fork-per-call == sequential
# ---------------------------------------------------------------------- #

class TestPoolBitIdentity:
    @pytest.mark.parametrize(
        "factory", [f for _, f in PAIR_FAMILIES],
        ids=[name for name, _ in PAIR_FAMILIES],
    )
    @given(length=st.integers(130, 1200), tile_words=st.integers(1, 3))
    @settings(max_examples=4, deadline=None)
    def test_pool_fork_sequential_bit_identical(self, factory, length,
                                                tile_words):
        # The tentpole property: for every pair family, the warm pool,
        # the legacy fork-per-call scheduler, and the sequential walk
        # produce the same words and the same popcounts.
        plan = compile_graph(_pair_graph(factory))
        sequential = run_streaming(plan, length, tile_words=tile_words, jobs=1)
        pooled = run_streaming(plan, length, tile_words=tile_words, jobs=3)
        set_default_pool(False)
        try:
            forked = run_streaming(plan, length, tile_words=tile_words, jobs=3)
        finally:
            set_default_pool(True)
        for name in plan.node_order:
            assert np.array_equal(pooled.words(name), sequential.words(name)), (
                "pool vs sequential", name, length, tile_words,
            )
            assert np.array_equal(forked.words(name), sequential.words(name)), (
                "fork vs sequential", name, length, tile_words,
            )
            assert np.array_equal(pooled.ones[name], sequential.ones[name]), (
                "pool vs sequential ones", name, length, tile_words,
            )

    def test_matrix_runs_on_both_runtimes(self):
        # The cross-backend matrix with the pool axis: the parallel leg
        # agrees bit for bit whichever runtime serves it.
        assert_backends_equivalent(
            build_graph("fsm_zoo"), 2111, tile_words=(2,), jobs=3, pool="both"
        )

    def test_keep_subset_through_shared_sinks(self):
        # Kept nodes travel back through SharedSink segments; a keep
        # subset at many spans must still assemble full-stream words.
        plan = compile_graph(build_graph("depth8"))
        ref = run_batch(plan, 1 << 14)
        result = run_streaming(
            plan, 1 << 14, tile_words=1, jobs=4, keep=("n8", "n4")
        )
        for name in ("n4", "n8"):
            assert np.array_equal(result.words(name), ref.words(name)), name


# ---------------------------------------------------------------------- #
# 2. Warm caches
# ---------------------------------------------------------------------- #

class TestWarmCaches:
    def test_second_call_hits_worker_plan_cache(self):
        # The same live plan object keeps its cache token: the second
        # call primes workers without re-sending the context, and the
        # warm pool forks nothing.
        plan = compile_graph(build_graph("fsm_zoo"))
        run_streaming(plan, 4096, tile_words=2, jobs=2)  # install token
        with obs.observe() as trace:
            run_streaming(plan, 4096, tile_words=2, jobs=2)
        counters = trace.metrics["counters"]
        assert counters.get("engine.parallel.pooled", 0) >= 1
        assert counters.get("engine.pool.plan.hit", 0) >= 1
        assert counters.get("engine.pool.plan.miss", 0) == 0
        assert counters.get("process.forks", 0) == 0

    def test_token_cache_survives_lru_churn(self):
        # More live plans than the worker-side context LRU holds: the
        # parent must mirror the evictions and re-send an evicted
        # context instead of priming a token the worker dropped
        # (regression: this used to KeyError inside the worker).
        from repro.engine.library import depth_chain_graph

        plans = [
            compile_graph(depth_chain_graph(depth))
            for depth in range(2, 2 + pool_mod._WORKER_CACHE + 3)
        ]
        ref = run_batch(plans[0], 2048)
        for plan in plans:
            run_streaming(plan, 2048, tile_words=1, jobs=2)
        result = run_streaming(plans[0], 2048, tile_words=1, jobs=2)
        for name in plans[0].node_order:
            assert np.array_equal(result.words(name), ref.words(name)), name

    def test_arena_freelist_recycles_across_calls(self):
        # Call 2 reuses call 1's segments: reuse counter fires, and no
        # extra segments accumulate in /dev/shm between calls.
        plan = compile_graph(build_graph("depth8"))
        run_streaming(plan, 1 << 14, tile_words=1, jobs=2)
        pool = pool_mod._POOL
        if pool is None or not pool.arena.available():
            pytest.skip("shared-memory segments unavailable")
        with obs.observe() as trace:
            run_streaming(plan, 1 << 14, tile_words=1, jobs=2)
        counters = trace.metrics["counters"]
        assert counters.get("engine.pool.shm.reuse", 0) >= 1


# ---------------------------------------------------------------------- #
# 3. Worker death and respawn
# ---------------------------------------------------------------------- #

class TestRespawn:
    def test_killed_worker_respawns_and_results_match(self):
        plan = compile_graph(build_graph("depth8"))
        ref = run_batch(plan, 4096)
        run_streaming(plan, 4096, tile_words=1, jobs=2)  # warm the pool
        pool = pool_mod._POOL
        assert pool is not None and pool.size >= 2
        before = pool.respawns
        os.kill(pool.worker_pids()[0], signal.SIGKILL)
        time.sleep(0.2)  # let the SIGKILL land before the next prime
        result = run_streaming(plan, 4096, tile_words=1, jobs=2)
        for name in plan.node_order:
            assert np.array_equal(result.words(name), ref.words(name)), name
        assert pool.respawns >= before + 1


# ---------------------------------------------------------------------- #
# 4. Fallback rules and lifecycle
# ---------------------------------------------------------------------- #

class TestFallbacksAndLifecycle:
    def test_jobs_one_never_pools(self):
        assert get_pool(1) is None

    def test_pool_off_falls_back(self):
        set_default_pool(False)
        assert get_pool(4) is None
        with pool_call(4) as call:
            assert call is None

    def test_env_gate_disables_default(self):
        code = (
            "from repro.engine.pool import default_pool; "
            "print(default_pool())"
        )
        env = dict(os.environ, REPRO_NO_POOL="1")
        out = subprocess.run(
            [sys.executable, "-c", code], env=env,
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == "False"

    def test_busy_pool_falls_back_with_counter(self):
        pool = get_pool(2)
        assert pool is not None
        assert pool._busy.acquire(blocking=False)
        try:
            with obs.observe() as trace:
                with pool_call(2) as call:
                    assert call is None
            counters = trace.metrics["counters"]
            assert counters.get("engine.pool.fallback.busy", 0) == 1
        finally:
            pool._busy.release()

    def test_unpicklable_context_falls_back_with_counter(self):
        with obs.observe() as trace:
            with pool_call(2, context=lambda: None) as call:
                assert call is None
        counters = trace.metrics["counters"]
        assert counters.get("engine.pool.fallback.unpicklable", 0) == 1

    def test_shutdown_pool_is_idempotent_and_restartable(self):
        plan = compile_graph(build_graph("depth8"))
        ref = run_batch(plan, 2048)
        run_streaming(plan, 2048, tile_words=1, jobs=2)
        shutdown_pool()
        shutdown_pool()  # double shutdown must not raise
        assert pool_mod._POOL is None
        # The next pooled call transparently starts a fresh pool.
        result = run_streaming(plan, 2048, tile_words=1, jobs=2)
        for name in plan.node_order:
            assert np.array_equal(result.words(name), ref.words(name)), name
        assert pool_mod._POOL is not None

    def test_task_error_reraises_original_exception(self):
        # A failing task surfaces its *original* exception type — the
        # same ValueError future.result() would re-raise on the
        # fork-per-call lanes — with the worker traceback chained as a
        # PoolTaskError cause.
        with pool_call(2) as call:
            if call is None:
                pytest.skip("pool unavailable")
            with pytest.raises(ValueError) as err:
                call.map("repro.engine.pool:_resolve_fn", [("os:system",)])
            cause = err.value.__cause__
            assert isinstance(cause, pool_mod.PoolTaskError)
            assert "Traceback" in str(cause)

    def test_pool_survives_task_error_midflight(self):
        # One task raising while other workers are still mid-task used
        # to leave their replies unread in the pipes; the next call's
        # prime then consumed a stale task reply as its ack and every
        # later reply shifted off by one — silently wrong results.
        # PoolCall.end now drains abandoned in-flight workers and every
        # recv validates seq, so later calls stay correct.
        plan = compile_graph(build_graph("depth8"))
        ref = run_batch(plan, 4096)
        run_streaming(plan, 4096, tile_words=1, jobs=2)  # warm the pool
        missing = ("__shm__", "repro_pool_no_such_segment", (4,), "<u8")
        for _ in range(3):  # several aborted calls, not just one
            with pool_call(2) as call:
                if call is None:
                    pytest.skip("pool unavailable")
                with pytest.raises(Exception):
                    call.map(
                        "repro.engine.pool:unwrap",
                        [(1,), (missing,), (2,), (3,), (4,)],
                    )
        with pool_call(2) as call:
            assert call is not None
            assert call.map(
                "repro.engine.pool:unwrap", [(i,) for i in range(8)]
            ) == list(range(8))
        result = run_streaming(plan, 4096, tile_words=1, jobs=2)
        for name in plan.node_order:
            assert np.array_equal(result.words(name), ref.words(name)), name

    def test_prime_failure_falls_back_with_counter(self):
        # Pickles in the parent, explodes in the worker's pickle.loads:
        # the call must fall back to the legacy lane (counted), not
        # hard-fail, and the pool must stay usable afterwards.
        with obs.observe() as trace:
            with pool_call(2, context=_ExplodesInWorker()) as call:
                assert call is None
        counters = trace.metrics["counters"]
        assert counters.get("engine.pool.fallback.prime", 0) == 1
        with pool_call(2) as call:
            if call is None:
                pytest.skip("pool unavailable")
            assert call.map(
                "repro.engine.pool:unwrap", [(i,) for i in range(4)]
            ) == list(range(4))

    def test_fn_refs_are_restricted_to_repro(self):
        with pytest.raises(ValueError):
            pool_mod._resolve_fn("os:system")


# ---------------------------------------------------------------------- #
# 5. SharedArena segment lifecycle
# ---------------------------------------------------------------------- #

class TestSharedArena:
    def test_roundtrip_and_freelist_reuse(self):
        arena = _test_arena()
        if not arena.available():
            pytest.skip("shared-memory segments unavailable")
        try:
            view, desc = arena.empty((4, 2048), "<u8")
            assert desc is not None and desc[0] == "__shm__"
            view[...] = np.arange(4 * 2048, dtype="<u8").reshape(4, 2048)
            assert np.array_equal(attach_view(desc), view)
            assert np.array_equal(unwrap(desc), view)
            misses = arena.misses
            arena.release_all()
            view2, desc2 = arena.empty((4, 2048), "<u8")
            assert arena.hits >= 1 and arena.misses == misses  # recycled
            assert not view2.any()  # recycled segments come back zeroed
        finally:
            arena.shutdown()

    def test_wrap_passes_small_and_non_arrays_through(self):
        arena = _test_arena()
        try:
            small = np.zeros((2, 8), dtype="<u8")
            assert arena.wrap(small) is small
            assert arena.wrap("plain") == "plain"
        finally:
            arena.shutdown()

    def test_wrap_shares_large_arrays(self):
        arena = _test_arena()
        if not arena.available():
            pytest.skip("shared-memory segments unavailable")
        try:
            big = np.arange(1 << 14, dtype="<u8")  # 128 KiB
            desc = arena.wrap(big)
            assert isinstance(desc, tuple) and desc[0] == "__shm__"
            assert np.array_equal(unwrap(desc), big)
        finally:
            arena.shutdown()

    def test_unwrap_is_identity_for_plain_objects(self):
        assert unwrap(42) == 42
        arr = np.arange(3)
        assert unwrap(arr) is arr
        assert unwrap(("no", "descriptor")) == ("no", "descriptor")

    def test_shared_sink_writes_at_word_offsets(self):
        arena = _test_arena()
        if not arena.available():
            pytest.skip("shared-memory segments unavailable")
        try:
            view, desc = arena.empty((2, 4096), "<u8")
            sink = SharedSink(desc)
            tile = np.full((2, 3), 7, dtype="<u8")
            sink.write(128, tile)  # bit offset 128 -> word 2
            assert np.array_equal(view[:, 2:5], tile)
            assert not view[:, :2].any() and not view[:, 5:].any()
        finally:
            arena.shutdown()

    def test_no_leaked_segments_after_shutdown(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        plan = compile_graph(build_graph("fsm_zoo"))
        run_streaming(plan, 1 << 14, tile_words=1, jobs=2)
        shutdown_pool()
        pattern = f"/dev/shm/{pool_mod._SHM_PREFIX}_{os.getpid()}_*"
        assert glob.glob(pattern) == []
