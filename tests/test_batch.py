"""Unit tests for repro.bitstream.batch.BitstreamBatch."""

import numpy as np
import pytest

from repro.bitstream import Bitstream, BitstreamBatch, Encoding
from repro.exceptions import EncodingError, LengthMismatchError


@pytest.fixture
def batch():
    return BitstreamBatch(
        np.array([[1, 0, 1, 0], [1, 1, 0, 0], [1, 1, 1, 1]], dtype=np.uint8)
    )


class TestConstruction:
    def test_shape_properties(self, batch):
        assert batch.batch_size == 3
        assert batch.length == 4

    def test_1d_promoted(self):
        b = BitstreamBatch([1, 0, 1, 1])
        assert b.batch_size == 1

    def test_empty_rejected(self):
        with pytest.raises(EncodingError):
            BitstreamBatch(np.zeros((0, 4), dtype=np.uint8))

    def test_non_binary_rejected(self):
        with pytest.raises(EncodingError):
            BitstreamBatch(np.array([[0, 2]]))

    def test_from_streams(self):
        b = BitstreamBatch.from_streams([Bitstream("01"), Bitstream("11")])
        assert b.batch_size == 2
        assert np.allclose(b.values, [0.5, 1.0])

    def test_from_streams_mixed_encoding_rejected(self):
        with pytest.raises(EncodingError):
            BitstreamBatch.from_streams([Bitstream("01"), Bitstream("11", "bipolar")])

    def test_from_streams_mixed_length_rejected(self):
        with pytest.raises(EncodingError):
            BitstreamBatch.from_streams([Bitstream("01"), Bitstream("110")])

    def test_from_streams_empty_rejected(self):
        with pytest.raises(EncodingError):
            BitstreamBatch.from_streams([])


class TestValues:
    def test_ones(self, batch):
        assert list(batch.ones) == [2, 2, 4]

    def test_values_unipolar(self, batch):
        assert np.allclose(batch.values, [0.5, 0.5, 1.0])

    def test_values_bipolar(self):
        b = BitstreamBatch([[1, 1, 0, 0]], Encoding.BIPOLAR)
        assert np.allclose(b.values, [0.0])

    def test_stream_extraction(self, batch):
        s = batch.stream(2)
        assert isinstance(s, Bitstream)
        assert s.value == 1.0

    def test_iter(self, batch):
        assert [s.value for s in batch] == [0.5, 0.5, 1.0]

    def test_len(self, batch):
        assert len(batch) == 3


class TestOperators:
    def test_and(self, batch):
        other = BitstreamBatch(np.ones((3, 4), dtype=np.uint8))
        assert np.array_equal((batch & other).bits, batch.bits)

    def test_invert(self, batch):
        assert np.allclose((~batch).values, 1 - batch.values)

    def test_xor_with_self_is_zero(self, batch):
        assert (batch ^ batch).values.sum() == 0

    def test_scc_self_rows(self, batch):
        values = batch.scc(batch)
        # Constant row (all ones) defines SCC 0; others are +1.
        assert values[0] == 1.0
        assert values[1] == 1.0
        assert values[2] == 0.0

    def test_length_mismatch(self, batch):
        with pytest.raises(LengthMismatchError):
            batch & BitstreamBatch(np.zeros((3, 5), dtype=np.uint8))

    def test_encoding_mismatch(self, batch):
        with pytest.raises(EncodingError):
            batch & BitstreamBatch(np.zeros((3, 4), dtype=np.uint8), "bipolar")
