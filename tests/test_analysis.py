"""Unit tests for the analysis harness (sweeps, tables, experiments)."""

import numpy as np
import pytest

from repro.analysis import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    exhaustive_levels,
    generate_level_batch,
    generate_pair_batch,
    measure_pair_transform,
    pair_levels,
    render_table,
    run_experiment,
)
from repro.analysis.tables import format_number
from repro.core import Synchronizer
from repro.rng import VanDerCorput, make_rng


class TestSweeps:
    def test_exhaustive_levels(self):
        levels = exhaustive_levels(256)
        assert levels[0] == 0 and levels[-1] == 255 and levels.size == 256

    def test_exhaustive_levels_step(self):
        assert exhaustive_levels(256, 64).tolist() == [0, 64, 128, 192]

    def test_pair_levels_cover_grid(self):
        xs, ys = pair_levels(16, 4)
        assert xs.size == 16 and ys.size == 16
        assert len(set(zip(xs.tolist(), ys.tolist()))) == 16

    def test_generate_level_batch_exact_with_vdc(self):
        levels = np.array([0, 13, 200, 255])
        bits = generate_level_batch(levels, VanDerCorput(8), 256)
        assert np.array_equal(bits.sum(axis=1), levels)

    def test_generate_pair_batch_shapes(self):
        x, y, xs, ys = generate_pair_batch(make_rng("vdc"), make_rng("halton3"), 64, 16)
        assert x.shape == (16, 64) and y.shape == (16, 64)
        assert xs.size == 16

    def test_measure_pair_transform_fields(self):
        result = measure_pair_transform(Synchronizer(1), "vdc", "halton3", n=64, step=16)
        assert result.pairs == 16
        assert -1 <= result.input_scc <= 1
        assert result.output_scc > result.input_scc
        row = result.as_row()
        assert row[0].startswith("synchronizer")


class TestTables:
    def test_render_basic(self):
        text = render_table(["a", "b"], [[1, 2.5], ["x", 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "---" in lines[1]

    def test_render_title(self):
        assert render_table(["a"], [[1]], title="T").splitlines()[0] == "T"

    def test_render_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_format_number(self):
        assert format_number(3) == "3"
        assert format_number(0.5) == "0.500"
        assert format_number(None) == "None"
        assert format_number(123456.0) == "123,456"

    def test_format_number_nan_is_deterministic(self):
        assert format_number(float("nan")) == "nan"
        # The sign of a NaN is a platform artefact, not a value: both
        # render identically.
        assert format_number(float("-nan")) == "nan"
        assert format_number(np.float64("nan")) == "nan"
        assert format_number(np.nan * -1.0) == "nan"

    def test_format_number_infinities(self):
        assert format_number(float("inf")) == "inf"
        assert format_number(float("-inf")) == "-inf"
        assert format_number(np.inf) == "inf"
        assert format_number(-np.inf) == "-inf"

    def test_format_number_negative_zero(self):
        assert format_number(-0.0) == "0"
        assert format_number(0.0) == "0"
        assert format_number(np.float64(-0.0)) == "0"

    def test_format_number_bools_and_strings(self):
        assert format_number(True) == "True"
        assert format_number(False) == "False"
        assert format_number("x") == "x"

    def test_format_number_digits(self):
        assert format_number(0.123456, digits=2) == "0.12"
        assert format_number(0.0001234, digits=2) == "0.00012"

    def test_render_table_with_nonfinite_cells(self):
        text = render_table(["a", "b", "c"], [[float("nan"), np.inf, -0.0]])
        row = text.splitlines()[-1]
        assert "nan" in row and "inf" in row
        assert "-0" not in row


class TestExperiments:
    def test_registry_complete(self):
        expected = {"table1", "fig1", "fig2", "table2", "table3", "table4",
                    "claims", "ablation_save_depth", "ablation_composition",
                    "ablation_buffer_depth", "fault_tolerance", "propagation",
                    "power_breakdown", "long_stream"}
        assert expected == set(ALL_EXPERIMENTS)

    def test_fault_tolerance_experiment(self):
        result = run_experiment("fault_tolerance", rates=(0.0, 0.01, 0.1), trials=64)
        assert result.all_checks_pass
        assert len(result.rows) == 3

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("table99")

    def test_table1_exact(self):
        result = run_experiment("table1")
        assert result.all_checks_pass
        assert len(result.rows) == 3

    def test_fig1_exact(self):
        assert run_experiment("fig1").all_checks_pass

    def test_fig2_shape(self):
        result = run_experiment("fig2", step=32)
        assert result.all_checks_pass
        assert len(result.rows) == 5

    def test_table2_coarse(self):
        # step=16 keeps the degenerate-pair dilution low enough for the
        # shape thresholds (coarser grids over-weight constant streams).
        result = run_experiment("table2", step=16)
        assert isinstance(result, ExperimentResult)
        assert len(result.rows) == 15
        failed = [k for k, v in result.checks.items() if not v]
        assert not failed, f"shape checks failed: {failed}"

    def test_table3_coarse(self):
        result = run_experiment("table3", step=32)
        assert result.all_checks_pass
        assert len(result.rows) == 5

    def test_claims(self):
        result = run_experiment("claims")
        assert result.all_checks_pass

    def test_ablation_save_depth(self):
        assert run_experiment("ablation_save_depth", step=64).all_checks_pass

    def test_ablation_composition(self):
        assert run_experiment("ablation_composition", step=64).all_checks_pass

    def test_ablation_buffer(self):
        assert run_experiment("ablation_buffer_depth", step=16).all_checks_pass

    def test_to_text_renders(self):
        text = run_experiment("table1").to_text()
        assert "Table I" in text and "PASS" in text


@pytest.mark.slow
class TestExperimentsSlow:
    def test_table4_small(self):
        result = run_experiment("table4", image_size=20)
        assert result.all_checks_pass
