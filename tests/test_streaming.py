"""Streaming tile execution: bit-identity at every tile boundary.

Four contracts, each enforced against the existing engines rather than
against fixtures:

1. **Windowed RNGs** — ``sequence_window(s, e)`` equals
   ``sequence(e)[s:e]`` for every registered generator (hypothesis over
   window bounds);
2. **Resumable steppers** — ``step_chunk`` / the transform carriers
   reproduce one-shot kernel execution bit for bit when a stream is cut
   at arbitrary boundaries, for every FSM kernel, across odd lengths and
   the tile sizes {1, 7, 64, 4096} words;
3. **Streaming executor** — ``run_streaming`` / ``audit_streaming`` are
   bit-/float-identical to ``run_batch`` / ``audit`` for every library
   graph, both encodings, odd lengths, batches >= 1, with and without
   fusion;
4. **Streaming pipeline** — the accelerator's ``backend="streaming"``
   output equals the engine route exactly, per variant.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import CAAdder, CAMax, CorDiv
from repro.bitstream.packed import pack_bits, unpack_bits
from repro.bitstream.streaming import (
    OverlapAccumulator,
    PackedTileSource,
    ValueAccumulator,
    iter_tiles,
    tile_bounds,
    tile_count,
)
from repro.core import (
    Decorrelator,
    Desynchronizer,
    IsolatorPair,
    SeriesPair,
    Synchronizer,
    TFMPair,
)
from repro.core.tfm import TrackingForecastMemory
from repro.engine import (
    GRAPH_LIBRARY,
    build_graph,
    clear_sequence_cache,
    compile_graph,
    run_streaming,
)
from repro.engine.executor import audit, run_batch
from repro.engine.library import long_stream_graph, mux_chain_graph
from repro.engine.plan import FusedChain
from repro.engine.streaming import audit_streaming
from repro.exceptions import EncodingError, GraphCompilationError
from repro.kernels import compiled_kernel, make_pair_carrier, step_chunk
from repro.kernels.dispatch import _run_tables
from repro.rng import LFSR, make_rng
from tests.helpers import assert_backends_equivalent

# Tile sizes from the issue's acceptance grid, in 64-bit words.
TILE_WORDS_GRID = (1, 7, 64, 4096)


def _random_bits(shape, seed, p=0.5):
    return (np.random.default_rng(seed).random(shape) < p).astype(np.uint8)


# ---------------------------------------------------------------------- #
# 1. Windowed RNG generation
# ---------------------------------------------------------------------- #

WINDOW_SPECS = [
    ("vdc", {}), ("halton3", {}), ("halton5", {}), ("halton7", {}),
    ("lfsr", {}), ("counter", {}), ("sobol0", {}), ("sobol1", {}),
    ("system", {}), ("vdc", {"width": 20}), ("sobol0", {"width": 20}),
    ("counter", {"width": 20}), ("halton3", {"width": 20}),
]


class TestWindowedRNG:
    @pytest.mark.parametrize("spec,kwargs", WINDOW_SPECS,
                             ids=[f"{s}-{k.get('width', 8)}" for s, k in WINDOW_SPECS])
    @given(bounds=st.tuples(st.integers(0, 2000), st.integers(0, 2000)))
    @settings(max_examples=25, deadline=None)
    def test_window_equals_prefix_slice(self, spec, kwargs, bounds):
        start, stop = min(bounds), max(bounds)
        rng = make_rng(spec, **kwargs)
        full = rng.sequence(2000) if stop else None
        window = rng.sequence_window(start, stop)
        assert window.shape == (stop - start,)
        if stop:
            assert np.array_equal(window, full[start:stop])

    @pytest.mark.parametrize("spec,kwargs", [
        ("vdc", {}), ("halton3", {}), ("vdc", {"width": 20}),
        ("halton5", {"width": 20}), ("sobol0", {"width": 20}),
        ("counter", {"width": 20}),
    ], ids=["vdc8", "halton3-8", "vdc20", "halton5-20", "sobol0-20", "counter20"])
    def test_sequence_at_arbitrary_indices(self, spec, kwargs):
        rng = make_rng(spec, **kwargs)
        full = rng.sequence(1500)
        idx = np.array([[0, 700, 3], [1499, 256, 255]])
        assert np.array_equal(rng.sequence_at(idx), full[idx])

    def test_sequence_at_is_index_addressed_for_aperiodic(self):
        """Aperiodic (Halton) and wide generators must not fall back to
        generating the max-index prefix — the streaming blur's phase
        rotation indexes near the end of very long streams."""
        rng = make_rng("halton3", width=20)
        huge = np.array([10_000_000, 3, 10_000_001])
        values = rng.sequence_at(huge)
        assert values.shape == (3,)
        assert np.array_equal(values[[1]], rng.sequence(4)[[3]])

    def test_integers_window_matches(self):
        rng = LFSR(8, seed=9)
        assert np.array_equal(
            rng.integers_window(13, 900, 4), rng.integers(900, 4)[13:]
        )

    def test_window_rejects_reversed_bounds(self):
        with pytest.raises(ValueError):
            make_rng("vdc").sequence_window(10, 3)


# ---------------------------------------------------------------------- #
# 2. Resumable steppers: step_chunk + carriers
# ---------------------------------------------------------------------- #

PAIR_FSMS = [
    pytest.param(lambda: Synchronizer(depth=1), id="sync-d1"),
    pytest.param(lambda: Synchronizer(depth=3), id="sync-d3"),
    pytest.param(lambda: Synchronizer(depth=2, flush=True), id="sync-flush"),
    pytest.param(lambda: Desynchronizer(depth=2), id="desync-d2"),
    pytest.param(lambda: Desynchronizer(depth=3, flush=True), id="desync-flush"),
]

SINGLE_FSMS = [
    pytest.param(CorDiv, id="cordiv"),
    pytest.param(CAAdder, id="ca-adder"),
    pytest.param(lambda: CAMax(counter_bits=4), id="ca-max"),
]


def _chunked_pair(fsm, x, y, tile_bits):
    state = np.full(x.shape[0], fsm.initial_state,
                    dtype=fsm.steady.next_state.dtype)
    total = x.shape[1]
    ox_parts, oy_parts = [], []
    for start in range(0, total, tile_bits):
        stop = min(start + tile_bits, total)
        state, ox, oy = step_chunk(
            fsm, state, x[:, start:stop], y[:, start:stop],
            remaining_after=total - stop,
        )
        ox_parts.append(ox)
        if oy is not None:
            oy_parts.append(oy)
    return (np.concatenate(ox_parts, axis=1),
            np.concatenate(oy_parts, axis=1) if oy_parts else None)


class TestStepChunkResumption:
    @pytest.mark.parametrize("tile_words", TILE_WORDS_GRID)
    @pytest.mark.parametrize("factory", PAIR_FSMS)
    def test_pair_fsm_chunks_match_one_shot(self, factory, tile_words):
        circuit = factory()
        fsm = compiled_kernel(circuit)
        # Odd length straddling several tiles of the smaller sizes and a
        # partial final tile of the largest.
        n = min(tile_words * 64 * 2 + 17, 9000)
        x = _random_bits((3, n), seed=1, p=0.6)
        y = _random_bits((3, n), seed=2, p=0.3)
        ref_x, ref_y = _run_tables(fsm, x, y)
        got_x, got_y = _chunked_pair(fsm, x, y, tile_words * 64)
        assert np.array_equal(got_x, ref_x)
        assert np.array_equal(got_y, ref_y)

    @pytest.mark.parametrize("tile_words", TILE_WORDS_GRID)
    @pytest.mark.parametrize("factory", SINGLE_FSMS)
    def test_single_output_fsm_chunks_match_one_shot(self, factory, tile_words):
        circuit = factory()
        fsm = compiled_kernel(circuit)
        n = min(tile_words * 64 * 2 + 17, 9000)
        x = _random_bits((2, n), seed=3, p=0.4)
        y = _random_bits((2, n), seed=4, p=0.8)
        ref, _ = _run_tables(fsm, x, y)
        got, none_y = _chunked_pair(fsm, x, y, tile_words * 64)
        assert none_y is None
        assert np.array_equal(got, ref)

    @pytest.mark.parametrize("tile_words", TILE_WORDS_GRID)
    def test_tfm_carrier_matches_one_shot(self, tile_words):
        n = min(tile_words * 64 * 2 + 17, 9000)
        bits = _random_bits((2, n), seed=5, p=0.55)
        from repro.kernels.streaming import make_stream_carrier

        one_shot = TrackingForecastMemory(LFSR(8, seed=11))
        ref = one_shot._process_stream_bits(bits)
        carrier = make_stream_carrier(
            TrackingForecastMemory(LFSR(8, seed=11)), n, 2
        )
        parts = [
            carrier.step(bits[:, s : s + tile_words * 64])
            for s in range(0, n, tile_words * 64)
        ]
        assert np.array_equal(np.concatenate(parts, axis=1), ref)

    @given(
        splits=st.lists(st.integers(1, 400), min_size=1, max_size=6),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_split_points_property(self, splits, seed):
        """Hypothesis: cutting a stream at ANY boundaries reproduces the
        one-shot run for a flush-mode FSM (the hardest case: the tail
        tables depend on global position)."""
        n = sum(splits)
        circuit = Synchronizer(depth=2, flush=True)
        fsm = compiled_kernel(circuit)
        x = _random_bits((2, n), seed=seed, p=0.5)
        y = _random_bits((2, n), seed=seed + 1, p=0.5)
        ref_x, ref_y = _run_tables(fsm, x, y)
        state = np.full(2, fsm.initial_state, dtype=fsm.steady.next_state.dtype)
        pos, ox_parts, oy_parts = 0, [], []
        for width in splits:
            stop = pos + width
            state, ox, oy = step_chunk(
                fsm, state, x[:, pos:stop], y[:, pos:stop],
                remaining_after=n - stop,
            )
            ox_parts.append(ox)
            oy_parts.append(oy)
            pos = stop
        assert np.array_equal(np.concatenate(ox_parts, axis=1), ref_x)
        assert np.array_equal(np.concatenate(oy_parts, axis=1), ref_y)

    @pytest.mark.parametrize("transform_factory", [
        lambda: Decorrelator(LFSR(8, seed=45), LFSR(8, seed=142), depth=4),
        lambda: IsolatorPair(delay=3),
        lambda: TFMPair(LFSR(8, seed=77)),
        lambda: SeriesPair([Synchronizer(depth=1), Synchronizer(depth=1, flush=True)]),
    ], ids=["decorrelator", "isolator-pair", "tfm-pair", "series-pair"])
    def test_composite_carriers_match_one_shot(self, transform_factory):
        n = 1013
        x = _random_bits((2, n), seed=6, p=0.7)
        y = _random_bits((2, n), seed=7, p=0.4)
        ref_x, ref_y = transform_factory()._process_bits(x.copy(), y.copy())
        for tile_bits in (64, 448, 1013):
            carrier = make_pair_carrier(transform_factory(), n, 2)
            parts = [
                carrier.step(x[:, s : s + tile_bits], y[:, s : s + tile_bits])
                for s in range(0, n, tile_bits)
            ]
            got_x = np.concatenate([p[0] for p in parts], axis=1)
            got_y = np.concatenate([p[1] for p in parts], axis=1)
            assert np.array_equal(got_x, ref_x), tile_bits
            assert np.array_equal(got_y, ref_y), tile_bits

    def test_step_chunk_rejects_trajectory_only_fsm(self):
        fsm = compiled_kernel(TrackingForecastMemory(LFSR(8, seed=1)))
        with pytest.raises(ValueError):
            step_chunk(fsm, np.zeros(1, dtype=np.int16),
                       np.zeros((1, 8), dtype=np.uint8),
                       np.zeros((1, 8), dtype=np.uint8))


# ---------------------------------------------------------------------- #
# 3. Streaming executor vs materialised engine
# ---------------------------------------------------------------------- #

class TestRunStreamingIdentity:
    @pytest.mark.parametrize("graph_name", sorted(GRAPH_LIBRARY))
    @pytest.mark.parametrize("length", [1, 63, 257, 1000])
    def test_bit_identity_all_library_graphs(self, graph_name, length):
        # The shared cross-backend matrix: interpreter == engine ==
        # streaming == parallel streaming at every tile size.
        assert_backends_equivalent(
            build_graph(graph_name), length, tile_words=(1, 7, 64)
        )

    @pytest.mark.parametrize("encoding", ["unipolar", "bipolar"])
    def test_encodings_and_values(self, encoding):
        plan = compile_graph(build_graph("mixed_pipeline"))
        ref = run_batch(plan, 777, encoding=encoding)
        result = run_streaming(plan, 777, tile_words=3, encoding=encoding)
        for name in plan.node_order:
            assert np.array_equal(result.values(name), ref.values(name))

    def test_batched_overrides_and_keep_subset(self):
        plan = compile_graph(build_graph("depth8"))
        values = {"src0": np.linspace(0.0, 1.0, 5),
                  "src4": np.linspace(1.0, 0.0, 5)}
        ref = run_batch(plan, 999, values=values)
        result = run_streaming(
            plan, 999, tile_words=4, values=values, keep=("n4", "n8")
        )
        assert result.batch_size == 5
        assert sorted(result.names) == ["n4", "n8"]
        assert np.array_equal(result.words("n4"), ref.words("n4"))
        assert np.array_equal(result.words("n8"), ref.words("n8"))
        assert np.array_equal(result.values("n8"), ref.values("n8"))

    def test_fusion_never_changes_bits(self):
        plan = compile_graph(mux_chain_graph(16))
        fused = run_streaming(plan, 4099, tile_words=8, keep=("n16",), fuse=True)
        unfused = run_streaming(plan, 4099, tile_words=8, keep=("n16",), fuse=False)
        assert fused.fused_super_steps >= 1
        assert unfused.fused_super_steps == 0
        assert np.array_equal(fused.words("n16"), unfused.words("n16"))

    def test_keep_validates_names(self):
        plan = compile_graph(build_graph("correlated_multiply"))
        with pytest.raises(GraphCompilationError):
            run_streaming(plan, 64, keep=("nope",))

    def test_values_only_for_kept_nodes(self):
        plan = compile_graph(build_graph("depth8"))
        result = run_streaming(plan, 256, keep=("n8",))
        with pytest.raises(KeyError):
            result.values("n1")

    @pytest.mark.parametrize("graph_name", sorted(GRAPH_LIBRARY))
    def test_audit_streaming_float_identity(self, graph_name):
        for length in (63, 700):
            assert_backends_equivalent(
                build_graph(graph_name), length, tile_words=(5,), audit=True
            )

    def test_long_stream_graph_width_matched_audit(self):
        plan = compile_graph(long_stream_graph(14))
        result = audit_streaming(plan, 1 << 14, tile_words=64)
        diff = next(e for e in result.entries if e.node == "diff")
        assert diff.measured_scc >= 0.999
        assert abs(diff.measured_value - diff.expected_value) < 1e-3


class TestFusionPass:
    def test_chain_collapses_single_consumer_runs(self):
        plan = compile_graph(mux_chain_graph(16))
        schedule = plan.fused_schedule(exposed={"n16"})
        chains = [s for s in schedule if isinstance(s, FusedChain)]
        assert len(chains) == 1
        assert len(chains[0]) == 16
        assert chains[0].name == "n16"

    def test_exposed_interior_splits_chain(self):
        plan = compile_graph(mux_chain_graph(16))
        schedule = plan.fused_schedule(exposed={"n8", "n16"})
        chains = [s for s in schedule if isinstance(s, FusedChain)]
        assert sorted(len(c) for c in chains) == [8, 8]

    def test_exposed_none_means_no_fusion(self):
        plan = compile_graph(mux_chain_graph(8))
        assert all(
            not isinstance(s, FusedChain) for s in plan.fused_schedule(None)
        )

    def test_dependent_steps_keep_relative_order(self):
        plan = compile_graph(build_graph("fsm_zoo"))
        schedule = plan.fused_schedule(exposed={"out"})
        seen = set()
        for item in schedule:
            steps = item.steps if isinstance(item, FusedChain) else (item,)
            for step in steps:
                for dep in step.inputs:
                    assert dep in seen, f"{step.name} scheduled before {dep}"
                seen.add(step.name)


# ---------------------------------------------------------------------- #
# 4. Bitstream tile layer
# ---------------------------------------------------------------------- #

class TestTileLayer:
    def test_tile_bounds_cover_odd_lengths(self):
        bounds = list(tile_bounds(1000, tile_words=3))
        assert bounds[0] == (0, 192)
        assert bounds[-1][1] == 1000
        spans = [stop - start for start, stop in bounds]
        assert all(s == 192 for s in spans[:-1]) and spans[-1] == 1000 % 192
        assert tile_count(1000, 3) == len(bounds)

    def test_iter_tiles_views_roundtrip(self):
        bits = _random_bits((2, 517), seed=8)
        words = pack_bits(bits)
        rebuilt = np.zeros_like(words)
        for start, stop, view in iter_tiles(words, 2, length=517):
            rebuilt[:, start // 64 : start // 64 + view.shape[1]] = view
        assert np.array_equal(rebuilt, words)

    def test_packed_tile_source_matches_one_shot(self):
        rng = make_rng("halton3")
        levels = np.array([0, 50, 199, 256])
        one_shot = pack_bits(
            (levels[:, None] > rng.sequence(700)[None, :]).astype(np.uint8)
        )
        source = PackedTileSource(levels, make_rng("halton3"))
        for start, stop in tile_bounds(700, 2):
            tile = source.tile(start, stop)
            assert np.array_equal(
                unpack_bits(tile, stop - start),
                unpack_bits(one_shot, 700)[:, start:stop],
            )

    @given(
        n=st.integers(1, 600),
        tile_words=st.integers(1, 4),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_accumulators_match_whole_stream_property(self, n, tile_words, seed):
        from repro.bitstream.metrics import popcount_words, scc_batch_packed

        x = pack_bits(_random_bits((2, n), seed=seed, p=0.4))
        y = pack_bits(_random_bits((2, n), seed=seed + 1, p=0.7))
        vacc = ValueAccumulator(n)
        oacc = OverlapAccumulator(n)
        for start, stop, view in iter_tiles(x, tile_words, length=n):
            vacc.update(view)
        for (_, _, xv), (_, _, yv) in zip(
            iter_tiles(x, tile_words, length=n), iter_tiles(y, tile_words, length=n)
        ):
            oacc.update(xv, yv)
        assert np.array_equal(vacc.ones, popcount_words(x))
        assert np.array_equal(oacc.scc(), scc_batch_packed(x, y, n))


# ---------------------------------------------------------------------- #
# 5. Validation + cache safety satellites
# ---------------------------------------------------------------------- #

class TestValidationAndCaches:
    def test_check_stream_length(self):
        from repro._validation import check_stream_length

        assert check_stream_length(17) == 17
        for bad in (0, -1, 2.5, "16", True):
            with pytest.raises(EncodingError):
                check_stream_length(bad)

    def test_check_tile_words(self):
        from repro._validation import check_tile_words
        from repro.exceptions import CircuitConfigurationError

        assert check_tile_words(1) == 1
        with pytest.raises(CircuitConfigurationError):
            check_tile_words(0)

    def test_clear_sequence_cache_exported_and_clears_select_tiles(self):
        from repro.engine.streaming import _SELECT_TILE_CACHE, _select_tile

        _select_tile(0, 128)
        assert _SELECT_TILE_CACHE
        clear_sequence_cache()
        assert not _SELECT_TILE_CACHE

    def test_sequence_cache_thread_safety_smoke(self):
        """Concurrent evaluation across threads must agree with serial
        evaluation (the memos are lock-guarded)."""
        clear_sequence_cache()
        plan = compile_graph(build_graph("mixed_pipeline"))
        expected = run_batch(plan, 333).words("avg")
        failures = []

        def worker():
            for _ in range(5):
                got = run_batch(plan, 333).words("avg")
                if not np.array_equal(got, expected):
                    failures.append("mismatch")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures

    def test_fork_hooks_rebind_locks_and_drop_memos(self):
        """The at-fork hooks must leave a child with empty caches and
        fresh (unheld) locks — simulated by invoking them directly."""
        from repro.engine import executor as ex
        from repro.engine import streaming as est

        run_batch(compile_graph(build_graph("mixed_pipeline")), 64)
        est._select_tile(0, 64)
        old_lock = ex._SEQ_LOCK
        ex._reinit_after_fork()
        est._reinit_after_fork()
        assert ex._SEQ_LOCK is not old_lock
        assert not ex._SEQ_CACHE and not ex._SELECT_CACHE
        assert not est._SELECT_TILE_CACHE
        assert ex._SEQ_LOCK.acquire(blocking=False)
        ex._SEQ_LOCK.release()


# ---------------------------------------------------------------------- #
# 6. Streaming pipeline + long_stream spec
# ---------------------------------------------------------------------- #

class TestStreamingPipeline:
    @pytest.mark.parametrize("variant", ["none", "regeneration", "synchronizer"])
    def test_streaming_backend_equals_engine(self, variant):
        from repro.pipeline import AcceleratorConfig, SCAccelerator, standard_test_images

        image = list(standard_test_images(12).values())[0] \
            if isinstance(standard_test_images(12), dict) \
            else standard_test_images(12)[0]
        image = np.asarray(image, dtype=np.float64)
        config = AcceleratorConfig(variant=variant, stream_length=192, tile=10)
        reference = SCAccelerator(config).process(image, backend="auto")
        streamed = SCAccelerator(config).process(
            image, backend="streaming", tile_words=1
        )
        assert np.array_equal(reference.output, streamed.output)
        assert reference.mean_abs_error == streamed.mean_abs_error


class TestLongStreamSpec:
    def test_spec_expands_one_shard_per_length(self):
        from repro.runner import get_spec

        spec = get_spec("long_stream")
        params = spec.params("smoke")
        shards = spec.shards(params)
        assert [s.label for s in shards] == ["N=2^14", "N=2^16"]
        assert all(s.kwargs["tile_words"] == params["tile_words"] for s in shards)

    def test_shard_and_merge_roundtrip(self):
        from repro.analysis.experiments import (
            _long_stream_merge,
            _long_stream_shard,
        )

        payloads = [
            _long_stream_shard(e, tile_words=64) for e in (10, 12)
        ]
        result = _long_stream_merge({}, payloads)
        assert result.experiment_id == "long_stream"
        assert len(result.rows) == 2

    def test_registered_in_all_experiments(self):
        from repro.analysis import ALL_EXPERIMENTS

        assert "long_stream" in ALL_EXPERIMENTS
