"""Unit tests for the SC arithmetic circuits (repro.arith)."""

import numpy as np
import pytest

from repro.arith import (
    AbsSubtractor,
    AndMin,
    CAAdder,
    CAMax,
    CorDiv,
    Multiplier,
    OrMax,
    SaturatingAdder,
    ScaledAdder,
    and_bits,
    mux_bits,
    not_bits,
    or_bits,
    xor_bits,
)
from repro.bitstream import Bitstream, BitstreamBatch, correlated_pair, exact_stream
from repro.exceptions import CircuitConfigurationError, EncodingError
from repro.rng import Halton, VanDerCorput


class TestGates:
    def test_and(self):
        assert and_bits(np.array([1, 1, 0]), np.array([1, 0, 0])).tolist() == [1, 0, 0]

    def test_or(self):
        assert or_bits(np.array([1, 0, 0]), np.array([0, 0, 1])).tolist() == [1, 0, 1]

    def test_xor(self):
        assert xor_bits(np.array([1, 1, 0]), np.array([1, 0, 0])).tolist() == [0, 1, 0]

    def test_not(self):
        assert not_bits(np.array([1, 0], dtype=np.uint8)).tolist() == [0, 1]

    def test_mux_selects(self):
        out = mux_bits(np.array([0, 1, 0, 1]), np.array([1, 1, 1, 1]), np.array([0, 0, 0, 0]))
        assert out.tolist() == [1, 0, 1, 0]


class TestMultiplier:
    def test_paper_fig1a(self):
        z = Multiplier().compute(Bitstream("01010101"), Bitstream("00111111"))
        assert z.value == 0.375

    def test_uncorrelated_accuracy_sweep(self):
        d2s_x = VanDerCorput(width=8)
        d2s_y = Halton(base=3, width=8)
        levels = np.arange(0, 256, 16)
        xs = np.repeat(levels, levels.size)
        ys = np.tile(levels, levels.size)
        x = (xs[:, None] > d2s_x.sequence(256)[None, :]).astype(np.uint8)
        y = (ys[:, None] > d2s_y.sequence(256)[None, :]).astype(np.uint8)
        z = Multiplier().compute(x, y)
        err = np.abs(z.mean(axis=1) - (xs / 256) * (ys / 256)).mean()
        assert err < 0.01

    def test_bipolar_uses_xnor(self):
        # Bipolar multiply: (+1) * (-1) = -1 with deterministic streams.
        x = Bitstream("1111", "bipolar")
        y = Bitstream("0000", "bipolar")
        assert Multiplier().compute(x, y).value == -1.0

    def test_encoding_mismatch(self):
        with pytest.raises(EncodingError):
            Multiplier().compute(Bitstream("01"), Bitstream("01", "bipolar"))

    def test_batch_input_returns_batch(self):
        b = BitstreamBatch([[1, 0], [0, 1]])
        out = Multiplier().compute(b, b)
        assert isinstance(out, BitstreamBatch)

    def test_expected(self):
        assert Multiplier.expected(0.5, 0.5) == 0.25


class TestScaledAdder:
    def test_paper_fig1b(self):
        z = ScaledAdder().compute(
            Bitstream("01110111"), Bitstream("11000000"), select=Bitstream("10100110")
        )
        assert z.value == 0.5

    def test_exact_half_sum_with_even_select(self):
        x = exact_stream(0.75, 64)
        y = exact_stream(0.25, 64)
        select = exact_stream(0.5, 64)
        z = ScaledAdder().compute(x, y, select=select)
        assert abs(z.value - 0.5) <= 2 / 64

    def test_rng_backed_select(self):
        adder = ScaledAdder(select_rng=Halton(base=5, width=8))
        x = exact_stream(0.5, 256)
        y = exact_stream(1.0, 256)
        assert abs(adder.compute(x, y).value - 0.75) < 0.05

    def test_missing_select_raises(self):
        with pytest.raises(CircuitConfigurationError):
            ScaledAdder().compute(Bitstream("01"), Bitstream("10"))

    def test_expected(self):
        assert ScaledAdder.expected(0.5, 1.0) == 0.75


class TestSaturatingAdder:
    def test_exact_on_negative_correlation(self):
        for px, py in [(0.25, 0.5), (0.5, 0.75), (0.875, 0.875)]:
            x, y = correlated_pair(px, py, 64, scc=-1)
            z = SaturatingAdder().compute(x, y)
            assert z.value == pytest.approx(min(1.0, px + py))

    def test_wrong_on_positive_correlation(self):
        x, y = correlated_pair(0.5, 0.5, 64, scc=1)
        # Positively correlated OR degenerates to max, not saturating add.
        assert SaturatingAdder().compute(x, y).value == pytest.approx(0.5)

    def test_expected_clips(self):
        assert SaturatingAdder.expected(0.75, 0.75) == 1.0


class TestAbsSubtractor:
    def test_exact_on_positive_correlation(self):
        for px, py in [(0.25, 0.75), (0.5, 0.125), (1.0, 0.5)]:
            x, y = correlated_pair(px, py, 64, scc=1)
            z = AbsSubtractor().compute(x, y)
            assert z.value == pytest.approx(abs(px - py))

    def test_overestimates_when_uncorrelated(self):
        x, y = correlated_pair(0.5, 0.5, 256, scc=0, seed=1)
        assert AbsSubtractor().compute(x, y).value > 0.2

    def test_expected(self):
        assert AbsSubtractor.expected(0.25, 0.75) == 0.5


class TestCorDiv:
    def test_ratio_on_shared_rng_inputs(self):
        # CORDIV needs comparator-style correlated streams (1s interleaved,
        # SCC=+1); synthetic bursts defeat its held-bit extrapolation.
        seq = VanDerCorput(width=8).sequence(256)
        x = Bitstream((64 > seq).astype(np.uint8))
        y = Bitstream((128 > seq).astype(np.uint8))
        z = CorDiv().compute(x, y)
        assert abs(z.value - 0.5) < 0.05

    def test_division_sweep_correlated(self):
        d2s = VanDerCorput(width=8)
        seq = d2s.sequence(256)
        errors = []
        for xl in (32, 64, 128):
            for yl in (160, 192, 255):
                x = (xl > seq).astype(np.uint8)
                y = (yl > seq).astype(np.uint8)
                z = CorDiv().compute(x, y)
                errors.append(abs(z.mean() - xl / yl))
        assert float(np.mean(errors)) < 0.05

    def test_initial_bit_validation(self):
        with pytest.raises(EncodingError):
            CorDiv(initial=2)

    def test_expected_handles_zero_divisor(self):
        assert CorDiv.expected(0.5, 0.0) == 0.0
        assert CorDiv.expected(0.75, 0.5) == 1.0


class TestMaxMin:
    def test_or_max_exact_on_correlated(self):
        x, y = correlated_pair(0.25, 0.625, 64, scc=1)
        assert OrMax().compute(x, y).value == 0.625

    def test_and_min_exact_on_correlated(self):
        x, y = correlated_pair(0.25, 0.625, 64, scc=1)
        assert AndMin().compute(x, y).value == 0.25

    def test_or_max_overshoots_uncorrelated(self):
        x, y = correlated_pair(0.5, 0.5, 256, scc=0, seed=3)
        assert OrMax().compute(x, y).value > 0.6

    def test_and_min_undershoots_uncorrelated(self):
        x, y = correlated_pair(0.5, 0.5, 256, scc=0, seed=3)
        assert AndMin().compute(x, y).value < 0.4

    def test_expected(self):
        assert OrMax.expected(0.2, 0.7) == 0.7
        assert AndMin.expected(0.2, 0.7) == 0.2


class TestCAAdder:
    def test_exact_regardless_of_correlation(self):
        for scc_target in (-1, 0, 1):
            x, y = correlated_pair(0.625, 0.375, 64, scc=scc_target, seed=0)
            z = CAAdder().compute(x, y)
            assert abs(z.value - 0.5) <= 1 / 64

    def test_output_count_is_floor_half_sum(self):
        rng = np.random.default_rng(4)
        for _ in range(20):
            x = rng.integers(0, 2, 33).astype(np.uint8)
            y = rng.integers(0, 2, 33).astype(np.uint8)
            z = CAAdder().compute(x, y)
            assert int(z.sum()) == (int(x.sum()) + int(y.sum())) // 2

    def test_requires_no_select(self):
        z = CAAdder().compute(Bitstream("1111"), Bitstream("1111"))
        assert z.value == 1.0


class TestCAMax:
    def test_accurate_for_any_correlation(self):
        # Realistic comparator-generated streams at SCC ~ +1, 0 (synthetic
        # bursts are pathological for the counter heuristic, as for any
        # FSM-based SC design).
        seq_a = VanDerCorput(width=8).sequence(256)
        seq_b = Halton(base=3, width=8).sequence(256)
        for sy in (seq_a, seq_b):  # shared sequence (+1) and independent (0)
            x = (64 > seq_a).astype(np.uint8)
            y = (192 > sy).astype(np.uint8)
            z = CAMax(counter_bits=6).compute(x, y)
            assert abs(float(z.mean()) - 0.75) < 0.06

    def test_equal_inputs(self):
        x, y = correlated_pair(0.5, 0.5, 256, scc=0, seed=5)
        z = CAMax().compute(x, y)
        assert abs(z.value - 0.5) < 0.06

    def test_counter_bits_validated(self):
        with pytest.raises(CircuitConfigurationError):
            CAMax(counter_bits=0)

    def test_batch_kind_preserved(self):
        b = BitstreamBatch(np.ones((2, 8), dtype=np.uint8))
        assert isinstance(CAMax().compute(b, b), BitstreamBatch)
