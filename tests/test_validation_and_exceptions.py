"""Unit tests for repro._validation and the exception hierarchy."""

import numpy as np
import pytest

from repro._validation import (
    as_bit_array,
    as_bit_matrix,
    check_non_negative_int,
    check_positive_int,
    check_power_of_two,
    check_probability,
    check_same_length,
)
from repro.exceptions import (
    CircuitConfigurationError,
    EncodingError,
    HardwareModelError,
    LengthMismatchError,
    PipelineError,
    ReproError,
    RNGConfigurationError,
)


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (EncodingError, LengthMismatchError, RNGConfigurationError,
                    CircuitConfigurationError, HardwareModelError, PipelineError):
            assert issubclass(exc, ReproError)

    def test_value_error_compatibility(self):
        # Callers used to ValueError semantics should still catch these.
        for exc in (EncodingError, LengthMismatchError, RNGConfigurationError):
            assert issubclass(exc, ValueError)


class TestBitArrayCoercion:
    def test_string(self):
        assert as_bit_array("0110").tolist() == [0, 1, 1, 0]

    def test_list(self):
        assert as_bit_array([1, 0]).dtype == np.uint8

    def test_bool(self):
        assert as_bit_array(np.array([True, False])).tolist() == [1, 0]

    def test_bad_string(self):
        with pytest.raises(EncodingError):
            as_bit_array("01a")

    def test_bad_values(self):
        with pytest.raises(EncodingError):
            as_bit_array([0, 1, 3])

    def test_matrix_promotion(self):
        assert as_bit_matrix([1, 0]).shape == (1, 2)

    def test_matrix_rejects_3d(self):
        with pytest.raises(EncodingError):
            as_bit_matrix(np.zeros((2, 2, 2), dtype=np.uint8))


class TestScalarChecks:
    def test_positive_int(self):
        assert check_positive_int(5, name="n") == 5

    def test_positive_int_rejects(self):
        for bad in (0, -1, 1.5, True, "3"):
            with pytest.raises(CircuitConfigurationError):
                check_positive_int(bad, name="n")

    def test_non_negative(self):
        assert check_non_negative_int(0, name="n") == 0
        with pytest.raises(CircuitConfigurationError):
            check_non_negative_int(-1, name="n")

    def test_probability(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(EncodingError):
            check_probability(1.0001)

    def test_power_of_two(self):
        assert check_power_of_two(8, name="n") == 8
        with pytest.raises(CircuitConfigurationError):
            check_power_of_two(12, name="n")

    def test_same_length(self):
        check_same_length(np.zeros((2, 4)), np.zeros((3, 4)))
        with pytest.raises(LengthMismatchError):
            check_same_length(np.zeros((2, 4)), np.zeros((2, 5)))
