"""Unit tests for RNG sharing/rotation utilities."""

import numpy as np
import pytest

from repro.bitstream import scc
from repro.exceptions import RNGConfigurationError
from repro.rng import LFSR, VanDerCorput
from repro.rng.sharing import RNGBank, RotatedView


class TestRotatedView:
    def test_zero_phase_is_identity(self):
        parent = LFSR(width=8)
        view = RotatedView(parent, 0)
        assert np.array_equal(view.sequence(100), parent.sequence(100))

    def test_phase_rotates(self):
        parent = LFSR(width=8)
        view = RotatedView(parent, 5)
        assert np.array_equal(view.sequence(50), parent.sequence(55)[5:])

    def test_wraps_at_period(self):
        parent = VanDerCorput(width=4)
        view = RotatedView(parent, 3)
        seq = view.sequence(32)
        assert np.array_equal(seq[:16], seq[16:])

    def test_name_mentions_phase(self):
        assert ">>7" in RotatedView(LFSR(width=8), 7).name

    def test_views_decorrelate_streams(self):
        parent = LFSR(width=8)
        a = RotatedView(parent, 0)
        b = RotatedView(parent, 97)
        x = (128 > a.sequence(256)).astype(np.uint8)
        y = (128 > b.sequence(256)).astype(np.uint8)
        assert abs(scc(x, y)) < 0.3


class TestRNGBank:
    def test_issues_distinct_phases(self):
        bank = RNGBank(LFSR(width=8), stride=37)
        views = bank.take_many(5)
        assert [v.phase for v in views] == [0, 37, 74, 111, 148]
        assert bank.issued == 5

    def test_stride_collision_rejected(self):
        # LFSR period 255 = 3*5*17; stride 15 shares factors.
        with pytest.raises(RNGConfigurationError):
            RNGBank(LFSR(width=8), stride=15)

    def test_full_period_unique_phases(self):
        bank = RNGBank(LFSR(width=4), stride=2)  # period 15, gcd(2,15)=1
        phases = {bank.take().phase for _ in range(15)}
        assert len(phases) == 15

    def test_bank_streams_pairwise_weakly_correlated(self):
        bank = RNGBank(LFSR(width=8), stride=37)
        views = bank.take_many(4)
        streams = [(100 > v.sequence(256)).astype(np.uint8) for v in views]
        for i in range(4):
            for j in range(i + 1, 4):
                assert abs(scc(streams[i], streams[j])) < 0.35
