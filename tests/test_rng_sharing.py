"""Unit tests for RNG sharing/rotation utilities."""

import numpy as np
import pytest

from repro.bitstream import scc
from repro.exceptions import RNGConfigurationError
from repro.rng import LFSR, VanDerCorput
from repro.rng.sharing import RNGBank, RotatedView


class TestRotatedView:
    def test_zero_phase_is_identity(self):
        parent = LFSR(width=8)
        view = RotatedView(parent, 0)
        assert np.array_equal(view.sequence(100), parent.sequence(100))

    def test_phase_rotates(self):
        parent = LFSR(width=8)
        view = RotatedView(parent, 5)
        assert np.array_equal(view.sequence(50), parent.sequence(55)[5:])

    def test_wraps_at_period(self):
        parent = VanDerCorput(width=4)
        view = RotatedView(parent, 3)
        seq = view.sequence(32)
        assert np.array_equal(seq[:16], seq[16:])

    def test_name_mentions_phase(self):
        assert ">>7" in RotatedView(LFSR(width=8), 7).name

    def test_views_decorrelate_streams(self):
        parent = LFSR(width=8)
        a = RotatedView(parent, 0)
        b = RotatedView(parent, 97)
        x = (128 > a.sequence(256)).astype(np.uint8)
        y = (128 > b.sequence(256)).astype(np.uint8)
        assert abs(scc(x, y)) < 0.3


class TestRNGBank:
    def test_issues_distinct_phases(self):
        bank = RNGBank(LFSR(width=8), stride=37)
        views = bank.take_many(5)
        assert [v.phase for v in views] == [0, 37, 74, 111, 148]
        assert bank.issued == 5

    def test_stride_collision_rejected(self):
        # LFSR period 255 = 3*5*17; stride 15 shares factors.
        with pytest.raises(RNGConfigurationError):
            RNGBank(LFSR(width=8), stride=15)

    def test_full_period_unique_phases(self):
        bank = RNGBank(LFSR(width=4), stride=2)  # period 15, gcd(2,15)=1
        phases = {bank.take().phase for _ in range(15)}
        assert len(phases) == 15

    def test_bank_streams_pairwise_weakly_correlated(self):
        bank = RNGBank(LFSR(width=8), stride=37)
        views = bank.take_many(4)
        streams = [(100 > v.sequence(256)).astype(np.uint8) for v in views]
        for i in range(4):
            for j in range(i + 1, 4):
                assert abs(scc(streams[i], streams[j])) < 0.35

    def test_take_many_requires_positive_count(self):
        from repro.exceptions import CircuitConfigurationError

        with pytest.raises(CircuitConfigurationError):
            RNGBank(LFSR(width=8), stride=37).take_many(0)


class TestSharingInvariants:
    """Rotation algebra: composing phases behaves like adding them."""

    def test_rotation_composes_additively(self):
        parent = LFSR(width=8)
        period = parent.period
        once = RotatedView(parent, 40)
        twice = RotatedView(once, 60, period=period)
        direct = RotatedView(parent, 100)
        assert np.array_equal(twice.sequence(300), direct.sequence(300))

    def test_view_is_a_cyclic_shift_of_parent(self):
        parent = VanDerCorput(width=5)
        period = 32
        view = RotatedView(parent, 11)
        assert np.array_equal(
            view.sequence(period), np.roll(parent.sequence(period), -11)
        )

    def test_view_preserves_value_multiset(self):
        parent = LFSR(width=6)
        view = RotatedView(parent, 17)
        assert sorted(view.sequence(parent.period).tolist()) == sorted(
            parent.sequence(parent.period).tolist()
        )

    def test_direct_sharing_is_maximally_correlated(self):
        # Two converters comparing against the *same* tap: SCC = +1.
        bank = RNGBank(LFSR(width=8), stride=37)
        view = bank.take()
        seq = view.sequence(256)
        x = (150 > seq).astype(np.uint8)
        y = (90 > seq).astype(np.uint8)
        assert scc(x, y) == pytest.approx(1.0)


class TestSharingPackedBackend:
    """Rotated-view streams through the packed uint64 fast path."""

    def test_packed_scc_matches_unpacked_for_bank_views(self):
        from repro.bitstream.metrics import scc_batch, scc_batch_packed
        from repro.bitstream.packed import pack_bits

        bank = RNGBank(LFSR(width=8), stride=37)
        a, b = bank.take_many(2)
        levels = np.arange(0, 256, 16, dtype=np.int64)
        x = (levels[:, None] > a.sequence(256)[None, :]).astype(np.uint8)
        y = (levels[:, None] > b.sequence(256)[None, :]).astype(np.uint8)
        packed = scc_batch_packed(pack_bits(x), pack_bits(y), 256)
        unpacked = scc_batch(x, y)
        assert np.array_equal(packed, unpacked)

    def test_level_batch_values_exact_after_packing(self):
        from repro.analysis import generate_level_batch
        from repro.bitstream import PackedBitstreamBatch

        view = RNGBank(VanDerCorput(width=8), stride=37).take()
        levels = np.array([0, 13, 128, 255])
        bits = generate_level_batch(levels, view, 256)
        packed = PackedBitstreamBatch.pack(bits)
        # VDC rotations are permutations of one period: popcounts (and so
        # values) are exact for every phase.
        assert np.array_equal(packed.values * 256, levels)

    def test_pair_sweep_through_rotated_views(self):
        """RNGBank views drive a Table-II style sweep end to end: register
        the bank's taps as factory specs, sweep packed, unregister."""
        from repro.analysis import measure_pair_transform
        from repro.core import Synchronizer
        from repro.rng.factory import _BUILDERS, _SEED_MAPS, _SEEDABLE, register_rng

        bank = RNGBank(LFSR(width=8), stride=97)
        view_a, view_b = bank.take_many(2)
        register_rng("bank_tap_a", lambda width=8, **kw: view_a)
        register_rng("bank_tap_b", lambda width=8, **kw: view_b)
        try:
            result = measure_pair_transform(
                Synchronizer(depth=1), "bank_tap_a", "bank_tap_b", n=64, step=16
            )
            reference = measure_pair_transform(
                Synchronizer(depth=1), "bank_tap_a", "bank_tap_b", n=64, step=16,
                backend="unpacked",
            )
            # Packed and unpacked metric reductions agree bit for bit.
            assert result.input_scc == reference.input_scc
            assert result.output_scc == reference.output_scc
            # The synchronizer raises the rotated pair's correlation.
            assert result.output_scc > result.input_scc
        finally:
            for name in ("bank_tap_a", "bank_tap_b"):
                _BUILDERS.pop(name, None)
                _SEEDABLE.pop(name, None)
                _SEED_MAPS.pop(name, None)
