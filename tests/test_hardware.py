"""Unit tests for the hardware cost model (repro.hardware)."""

import math

import pytest

from repro.exceptions import HardwareModelError
from repro.hardware import (
    EFFECTIVE_CYCLE_US,
    CostReport,
    Netlist,
    NetlistEntry,
    STDCELLS,
    cell,
    components,
    report,
)


class TestGateLibrary:
    def test_anchor_cells_present(self):
        for name in ("INV", "NAND2", "AND2", "OR2", "XOR2", "MUX2", "DFF", "GATE"):
            assert name in STDCELLS

    def test_or2_anchor_matches_paper(self):
        assert cell("OR2").area_um2 == 2.16
        assert cell("OR2").power_uw == 0.26

    def test_unknown_cell(self):
        with pytest.raises(HardwareModelError):
            cell("FLUX_CAPACITOR")

    def test_all_cells_positive(self):
        for spec in STDCELLS.values():
            assert spec.area_um2 > 0 and spec.power_uw > 0

    def test_dff_much_larger_than_gates(self):
        assert cell("DFF").area_um2 > 4 * cell("NAND2").area_um2


class TestNetlist:
    def test_build_shorthand(self):
        n = Netlist.build("test", DFF=2, GATE=3)
        assert n.area_um2 == pytest.approx(2 * 12.0 + 3 * 2.16)

    def test_power_with_activity(self):
        n = Netlist("t", [NetlistEntry(cell("DFF"), 1, activity=2.0)])
        assert n.power_uw == pytest.approx(2 * cell("DFF").power_uw)

    def test_add_composes(self):
        total = Netlist.build("a", OR2=1) + Netlist.build("b", AND2=1)
        assert total.area_um2 == pytest.approx(4.32)

    def test_multiply_scales(self):
        n = Netlist.build("x", DFF=1) * 10
        assert n.area_um2 == pytest.approx(120.0)
        assert (3 * Netlist.build("x", DFF=1)).area_um2 == pytest.approx(36.0)

    def test_multiply_rejects_negative(self):
        with pytest.raises(HardwareModelError):
            Netlist.build("x", DFF=1) * -1

    def test_negative_count_rejected(self):
        with pytest.raises(HardwareModelError):
            NetlistEntry(cell("DFF"), -1)

    def test_histogram(self):
        n = Netlist.build("h", DFF=2, GATE=5) + Netlist.build("h2", DFF=1)
        hist = n.cell_histogram()
        assert hist["DFF"] == 3 and hist["GATE"] == 5

    def test_gate_count(self):
        assert Netlist.build("g", DFF=2, GATE=5).gate_count() == 7

    def test_scaled_activity(self):
        n = Netlist.build("s", GATE=10)
        assert n.scaled_activity(2.0).power_uw == pytest.approx(2 * n.power_uw)

    def test_with_entry(self):
        n = Netlist("base").with_entry("OR2", 1)
        assert n.area_um2 == pytest.approx(2.16)


class TestCostReport:
    def test_energy_convention(self):
        # Energy = power x cycles x T_eff; the OR gate must land on the
        # paper's 165 pJ at N=256.
        r = report(components.or_gate())
        assert r.energy_pj(256) == pytest.approx(165, rel=0.01)

    def test_energy_nj(self):
        r = CostReport("x", 1.0, 1000.0)
        assert r.energy_nj(256) == pytest.approx(r.energy_pj(256) / 1000)

    def test_energy_validates(self):
        r = CostReport("x", 1.0, 1.0)
        with pytest.raises(HardwareModelError):
            r.energy_pj(0)
        with pytest.raises(HardwareModelError):
            r.energy_pj(10, cycle_us=-1)

    def test_str(self):
        assert "um2" in str(CostReport("x", 1.0, 2.0))


class TestComponentAnchors:
    """The calibration targets from the paper's Tables II/III/IV."""

    def test_or_and_gates(self):
        assert report(components.or_gate()).area_um2 == pytest.approx(2.16)
        assert report(components.and_gate()).area_um2 == pytest.approx(2.16)

    def test_sync_max_near_paper(self):
        r = report(components.sync_max())
        assert r.area_um2 == pytest.approx(48.6, rel=0.1)
        assert r.power_uw == pytest.approx(4.89, rel=0.1)

    def test_ca_max_near_paper(self):
        r = report(components.ca_max())
        assert r.area_um2 == pytest.approx(252.36, rel=0.1)
        assert r.power_uw == pytest.approx(56.7, rel=0.1)

    def test_ca_vs_sync_ratios(self):
        ca = report(components.ca_max())
        sync = report(components.sync_max())
        assert ca.area_um2 / sync.area_um2 == pytest.approx(5.2, rel=0.2)
        assert ca.energy_pj(256) / sync.energy_pj(256) == pytest.approx(11.6, rel=0.2)

    def test_ca_adder_ratios(self):
        ca = report(components.ca_adder())
        mux = report(components.mux_adder())
        assert ca.area_um2 / mux.area_um2 > 3
        assert ca.power_uw / mux.power_uw == pytest.approx(10.7, rel=0.3)

    def test_regenerator_matches_table4_increment(self):
        # Table IV implies ~164 um^2 per regeneration unit.
        assert report(components.regenerator()).area_um2 == pytest.approx(165, rel=0.05)

    def test_converters_order_of_magnitude_above_gates(self):
        # Paper Section II-A: converters cost 1-2 orders of magnitude more
        # than SC arithmetic.
        d2s = report(components.d2s_converter())
        s2d = report(components.s2d_converter())
        or_gate = report(components.or_gate())
        assert d2s.area_um2 > 30 * or_gate.area_um2
        assert s2d.power_uw > 10 * or_gate.power_uw

    def test_synchronizer_depth_scaling(self):
        areas = [report(components.synchronizer(d)).area_um2 for d in (1, 2, 4, 8)]
        assert areas == sorted(areas)
        assert areas[0] < areas[-1]

    def test_desynchronizer_state_count(self):
        # D=1 has 4 states -> 2 state bits, same as the synchronizer's 3
        # states; both need 2 DFFs.
        sync = components.synchronizer(1).cell_histogram()
        desync = components.desynchronizer(1).cell_histogram()
        assert sync["DFF"] == 2 and desync["DFF"] == 2

    def test_shuffle_buffer_scales_with_depth(self):
        shallow = report(components.shuffle_buffer(2)).area_um2
        deep = report(components.shuffle_buffer(16)).area_um2
        assert deep > 4 * shallow

    def test_decorrelator_is_two_buffers(self):
        assert report(components.decorrelator(4)).area_um2 == pytest.approx(
            2 * report(components.shuffle_buffer(4)).area_um2
        )

    def test_tfm_larger_than_decorrelator(self):
        # Paper Section V: TFMs are larger (binary-encoded parts).
        assert report(components.tfm()).area_um2 > report(components.decorrelator()).area_um2

    def test_isolator_is_one_dff(self):
        assert report(components.isolator()).area_um2 == pytest.approx(12.0)

    def test_lfsr_scales_with_width(self):
        assert (
            report(components.lfsr_rng(16)).area_um2
            > report(components.lfsr_rng(8)).area_um2
        )

    def test_width_validation(self):
        with pytest.raises(Exception):
            components.lfsr_rng(0)
